(* C back-end tests: the generated C is compiled with a real C compiler
   and executed; its final-state dump must equal the reference
   interpreter's. With OpenMP enabled and several threads, the loops
   the analysis marked parallel actually run concurrently — a racy
   (wrong) "parallel" verdict shows up as a divergent dump. *)

open Dda_lang
open Dda_core
open Dda_codegen

let gcc_available = Sys.command "gcc --version > /dev/null 2>&1" = 0

let require_gcc () = if not gcc_available then Alcotest.skip ()

let read_all ic =
  let buf = Buffer.create 1024 in
  (try
     while true do
       Buffer.add_channel buf ic 1
     done
   with End_of_file -> ());
  Buffer.contents buf

let compile_and_run ?(openmp = false) ?(threads = 1) c_src =
  let dir = Filename.temp_file "dda_cg" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun f -> try Sys.remove (Filename.concat dir f) with _ -> ())
        (Sys.readdir dir);
      try Unix.rmdir dir with _ -> ())
    (fun () ->
       let c_file = Filename.concat dir "prog.c" in
       let exe = Filename.concat dir "prog" in
       let oc = open_out c_file in
       output_string oc c_src;
       close_out oc;
       let flags = if openmp then "-fopenmp" else "" in
       let cmd =
         Printf.sprintf "gcc -O1 %s -o %s %s 2> %s/cc.err" flags
           (Filename.quote exe) (Filename.quote c_file) (Filename.quote dir)
       in
       if Sys.command cmd <> 0 then
         failwith ("C compilation failed:\n" ^ c_src);
       let run_cmd =
         Printf.sprintf "OMP_NUM_THREADS=%d %s" threads (Filename.quote exe)
       in
       let ic = Unix.open_process_in run_cmd in
       let output = read_all ic in
       match Unix.close_process_in ic with
       | Unix.WEXITED 0 -> output
       | _ -> failwith "generated program crashed")

let parallel_flags prog =
  let prepared = Dda_passes.Pipeline.run prog in
  let sites = Affine.extract prepared in
  let report =
    Analyzer.analyze
      ~config:{ Analyzer.default_config with Analyzer.run_pipeline = false }
      prepared
  in
  (prepared, Analyzer.parallel_loops report sites)

let check_against_interp ?(openmp = false) ?(threads = 1) name prog =
  let prepared, parallel = parallel_flags prog in
  match C_emit.emit ~parallel prepared with
  | Error reason -> Alcotest.failf "%s: emit rejected: %s" name reason
  | Ok c_src ->
    let expected = C_emit.state_dump (fst (Interp.final_state prepared)) in
    let actual = compile_and_run ~openmp ~threads c_src in
    Alcotest.(check string) (name ^ ": C output equals interpreter state")
      expected actual

(* ------------------------------------------------------------------ *)
(* Unit tests                                                          *)
(* ------------------------------------------------------------------ *)

let codegen_kernels =
  (* Kernels without read() — those have symbolic bounds the back end
     rejects. *)
  List.filter
    (fun (k : Dda_perfect.Kernels.kernel) ->
       not (String.length k.source >= 4 && String.sub k.source 0 4 = "read"))
    Dda_perfect.Kernels.all

let test_kernels_sequential () =
  require_gcc ();
  List.iter
    (fun (k : Dda_perfect.Kernels.kernel) ->
       check_against_interp k.name (Parser.parse_program k.source))
    codegen_kernels

let test_kernels_openmp () =
  require_gcc ();
  List.iter
    (fun (k : Dda_perfect.Kernels.kernel) ->
       check_against_interp ~openmp:true ~threads:4 k.name
         (Parser.parse_program k.source))
    codegen_kernels

let test_pragma_placement () =
  let prog = Parser.parse_program "for i = 1 to 100 do\n  c[i] = a[i] + b[i]\nend" in
  let prepared, parallel = parallel_flags prog in
  (match C_emit.emit ~parallel prepared with
   | Ok src ->
     let contains needle hay =
       let nl = String.length needle and hl = String.length hay in
       let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
       go 0
     in
     Alcotest.(check bool) "pragma present" true
       (contains "#pragma omp parallel for lastprivate(v_i)" src)
   | Error e -> Alcotest.fail e);
  (* A serial loop gets no pragma. *)
  let prog2 = Parser.parse_program "for i = 2 to 100 do\n  s[i] = s[i-1] + 1\nend" in
  let prepared2, parallel2 = parallel_flags prog2 in
  match C_emit.emit ~parallel:parallel2 prepared2 with
  | Ok src ->
    let contains needle hay =
      let nl = String.length needle and hl = String.length hay in
      let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
      go 0
    in
    Alcotest.(check bool) "no pragma" false (contains "#pragma" src)
  | Error e -> Alcotest.fail e

let test_rejections () =
  let reject src =
    match C_emit.emit (Parser.parse_program src) with
    | Error _ -> true
    | Ok _ -> false
  in
  Alcotest.(check bool) "read rejected" true (reject "read(n)\nfor i = 1 to n do a[i] = 1 end");
  Alcotest.(check bool) "unbounded scalar subscript rejected" true
    (reject "t = 5\nread(t)\na[t] = 1" || reject "a[q] = 1");
  Alcotest.(check bool) "constant program accepted" false
    (reject "for i = 1 to 3 do a[i] = i end")

let test_fortran_loop_semantics () =
  require_gcc ();
  (* Last-executed value, zero-trip untouched, bounds evaluated once. *)
  check_against_interp "loop semantics"
    (Parser.parse_program
       "t = 7\n\
        for i = 5 to 1 do t = i end\n\
        for j = 1 to 4 do u = j end\n\
        m = 3\n\
        for k = 1 to m do m = 1 end");
  check_against_interp "negative indices"
    (Parser.parse_program "for i = 1 to 5 do a[0 - i] = i end")

(* ------------------------------------------------------------------ *)
(* Property: random affine nests through gcc                           *)
(* ------------------------------------------------------------------ *)

let prop_codegen_matches_interp =
  QCheck.Test.make ~name:"generated C reproduces the interpreter state (gcc)"
    ~count:30 Test_support.Gen_ast.arb_affine_nest
    (fun prog ->
       QCheck.assume gcc_available;
       let prepared, parallel = parallel_flags prog in
       match C_emit.emit ~parallel prepared with
       | Error _ -> QCheck.assume_fail ()
       | Ok c_src ->
         let expected = C_emit.state_dump (fst (Interp.final_state prepared)) in
         String.equal expected (compile_and_run c_src))

let prop_codegen_openmp_matches_interp =
  QCheck.Test.make
    ~name:"generated C with OpenMP (4 threads) reproduces the interpreter state"
    ~count:15 Test_support.Gen_ast.arb_affine_nest
    (fun prog ->
       QCheck.assume gcc_available;
       let prepared, parallel = parallel_flags prog in
       match C_emit.emit ~parallel prepared with
       | Error _ -> QCheck.assume_fail ()
       | Ok c_src ->
         let expected = C_emit.state_dump (fst (Interp.final_state prepared)) in
         String.equal expected (compile_and_run ~openmp:true ~threads:4 c_src))

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "codegen"
    [
      ( "unit",
        [
          Alcotest.test_case "kernels, sequential" `Quick test_kernels_sequential;
          Alcotest.test_case "kernels, openmp x4" `Quick test_kernels_openmp;
          Alcotest.test_case "pragma placement" `Quick test_pragma_placement;
          Alcotest.test_case "rejections" `Quick test_rejections;
          Alcotest.test_case "fortran loop semantics" `Quick test_fortran_loop_semantics;
        ] );
      ( "property",
        [ qt prop_codegen_matches_interp; qt prop_codegen_openmp_matches_interp ] );
    ]
