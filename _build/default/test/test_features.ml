(* Tests for the paper's "further optimizations", implemented as
   features: symmetric-pair memoization, dependence-kind
   classification, and persistent memo sessions. *)

open Dda_lang
open Dda_core

let parse = Parser.parse_program

let exact_with memo =
  {
    Analyzer.default_config with
    Analyzer.prune = Direction.no_pruning;
    memo;
    run_pipeline = false;
    within_nest_only = false;
  }

let dirs_to_string vs =
  String.concat " " (List.map (Format.asprintf "%a" Direction.pp_vector) vs)

(* ------------------------------------------------------------------ *)
(* Problem.swap                                                        *)
(* ------------------------------------------------------------------ *)

let problem_of src =
  let prog = parse (Pretty.program_to_string (parse src)) in
  let sites = Affine.extract prog in
  let w = List.find (fun (s : Affine.site) -> s.role = `Write) sites in
  let r = List.find (fun (s : Affine.site) -> s.role = `Read) sites in
  Option.get (Build_problem.build w r)

let test_swap_involution () =
  let p = problem_of "read(n)\nfor i = 1 to n do for j = 1 to i do aa[i][j] = aa[j][i+2] + 1 end end" in
  let pss = Problem.swap (Problem.swap p) in
  Alcotest.(check bool) "swap . swap = id on keys" true
    (Problem.to_key p = Problem.to_key pss);
  Alcotest.(check int) "n1 swapped" p.n1 (Problem.swap p).n2;
  Alcotest.(check bool) "names round trip" true (p.names = pss.names)

let test_swap_mirror_keys () =
  (* The paper's example: a[i] vs a[i-1] is the mirror of a[i-1] vs
     a[i]. *)
  let p1 = problem_of "for i = 1 to 10 do a[i] = a[i-1] + 1 end" in
  let p2 = problem_of "for i = 1 to 10 do a[i-1] = a[i] + 1 end" in
  Alcotest.(check bool) "different problems" true
    (Problem.to_key p1 <> Problem.to_key p2);
  Alcotest.(check bool) "swap of one keys as the other" true
    (Problem.to_key (Problem.swap p1) = Problem.to_key p2)

let test_swap_preserves_solutions () =
  let p = problem_of "for i = 1 to 10 do a[i+1] = a[i] + 1 end" in
  let s = Problem.swap p in
  (* (i, i') = (1, 2) solves p; the swapped problem is solved by the
     swapped point (2, 1). *)
  let z = Dda_numeric.Zint.of_int in
  Alcotest.(check bool) "p solved" true (Problem.satisfies [| z 1; z 2 |] p);
  Alcotest.(check bool) "swap solved by swapped point" true
    (Problem.satisfies [| z 2; z 1 |] s);
  Alcotest.(check bool) "swap rejects unswapped point" false
    (Problem.satisfies [| z 1; z 2 |] s)

(* ------------------------------------------------------------------ *)
(* Symmetric memoization                                               *)
(* ------------------------------------------------------------------ *)

let mirror_src =
  (* Two mirror-image nests on different arrays (same problem shape). *)
  "for i = 1 to 10 do\n  a[i] = a[i-1] + 1\nend\n\
   for i = 1 to 10 do\n  b[i-1] = b[i] + 1\nend"

let non_self (r : Analyzer.report) =
  List.filter (fun (p : Analyzer.pair_report) -> not p.self_pair) r.pair_reports

let test_symmetric_collapses_mirrors () =
  let improved = Analyzer.analyze ~config:(exact_with Analyzer.Memo_improved) (parse mirror_src) in
  let symmetric = Analyzer.analyze ~config:(exact_with Analyzer.Memo_symmetric) (parse mirror_src) in
  (* Improved keeps the two orientations apart; symmetric shares one
     entry (self pairs of the two writes also collapse in both). *)
  Alcotest.(check bool) "improved keeps them apart" true
    (improved.stats.memo_unique_full > symmetric.stats.memo_unique_full);
  Alcotest.(check int) "symmetric: one shared non-self entry + one self" 2
    symmetric.stats.memo_unique_full

let test_symmetric_mirrors_directions () =
  let report = Analyzer.analyze ~config:(exact_with Analyzer.Memo_symmetric) (parse mirror_src) in
  match non_self report with
  | [ r1; r2 ] -> (
      match (r1.outcome, r2.outcome) with
      | Analyzer.Tested t1, Analyzer.Tested t2 ->
        Alcotest.(check bool) "both dependent" true (t1.dependent && t2.dependent);
        (* a[i] = a[i-1]: the write's cell i is read when i' - 1 = i,
           i.e. i < i': direction (<), distance +1. The mirror nest
           b[i-1] = b[i] must come back flipped. *)
        Alcotest.(check string) "first (<)" "(<)" (dirs_to_string t1.directions);
        Alcotest.(check string) "second mirrored (>)" "(>)" (dirs_to_string t2.directions);
        let d1 = Option.get t1.distance and d2 = Option.get t2.distance in
        Alcotest.(check int) "distance 1" 1 (Dda_numeric.Zint.to_int_exn d1.(0));
        Alcotest.(check int) "mirrored distance -1" (-1) (Dda_numeric.Zint.to_int_exn d2.(0))
      | _ -> Alcotest.fail "expected tested outcomes")
  | rs -> Alcotest.failf "expected 2 non-self pairs, got %d" (List.length rs)

let prop_symmetric_transparent =
  QCheck.Test.make ~name:"symmetric memo preserves verdicts and covers vectors"
    ~count:150 Test_support.Gen_ast.arb_affine_nest
    (fun prog ->
       let off = Analyzer.analyze ~config:(exact_with Analyzer.Memo_off) prog in
       let sym = Analyzer.analyze ~config:(exact_with Analyzer.Memo_symmetric) prog in
       let covered concrete claim =
         Array.length concrete = Array.length claim
         && (let ok = ref true in
             Array.iteri
               (fun i c ->
                  match claim.(i) with
                  | Direction.Dany -> ()
                  | d -> if d <> c then ok := false)
               concrete;
             !ok)
       in
       List.for_all2
         (fun (a : Analyzer.pair_report) (b : Analyzer.pair_report) ->
            Loc.equal a.loc1 b.loc1 && Loc.equal a.loc2 b.loc2
            &&
            match (a.outcome, b.outcome) with
            | Analyzer.Tested ta, Analyzer.Tested tb ->
              ta.dependent = tb.dependent
              && List.for_all
                   (fun c -> List.exists (covered c) tb.directions)
                   ta.directions
            | oa, ob -> oa = ob)
         off.pair_reports sym.pair_reports)

(* ------------------------------------------------------------------ *)
(* Dependence kinds                                                    *)
(* ------------------------------------------------------------------ *)

let kinds_of src =
  let report = Analyzer.analyze ~config:(exact_with Analyzer.Memo_simple) (parse src) in
  List.concat_map
    (fun (r : Analyzer.pair_report) ->
       match r.outcome with
       | Analyzer.Tested t when t.dependent ->
         List.map (fun v -> Analyzer.vector_kind r v) t.directions
       | _ -> [])
    (non_self report)

let test_kind_flow () =
  (* a[i+1] = a[i]: write at i, read at i' = i + 1 later: flow. *)
  Alcotest.(check bool) "flow" true
    (kinds_of "for i = 1 to 10 do a[i+1] = a[i] + 1 end" = [ Analyzer.Flow ])

let test_kind_anti () =
  (* a[i] = a[i+1]: the read of cell i+1 happens before its write. *)
  Alcotest.(check bool) "anti" true
    (kinds_of "for i = 1 to 10 do a[i] = a[i+1] + 1 end" = [ Analyzer.Anti ])

let test_kind_output () =
  let src = "for i = 1 to 10 do\n  a[i] = 1\n  a[i+1] = 2\nend" in
  let ks = kinds_of src in
  Alcotest.(check bool) "output dependence present" true (List.mem Analyzer.Output ks)

let test_kind_loop_independent () =
  (* Same-iteration write-then-read: all-= vector, textual order says
     the write is the source: flow. *)
  let src = "for i = 1 to 10 do\n  a[i] = 1\n  t = a[i]\nend" in
  Alcotest.(check bool) "loop-independent flow" true
    (kinds_of src = [ Analyzer.Flow ])

(* ------------------------------------------------------------------ *)
(* Sessions                                                            *)
(* ------------------------------------------------------------------ *)

let with_temp_file f =
  let path = Filename.temp_file "dda_session" ".bin" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ()) (fun () -> f path)

let strip (r : Analyzer.report) =
  List.map
    (fun (p : Analyzer.pair_report) ->
       ( p.loc1,
         p.loc2,
         match p.outcome with
         | Analyzer.Tested t ->
           ("t", t.dependent, List.map (Format.asprintf "%a" Direction.pp_vector) t.directions)
         | Analyzer.Constant d -> ("c", d, [])
         | Analyzer.Gcd_independent -> ("g", false, [])
         | Analyzer.Assumed_dependent -> ("a", true, []) ))
    r.pair_reports

let test_session_accumulates () =
  let prog = parse mirror_src in
  let session = Analyzer.create_session () in
  let r1 = Analyzer.analyze_session session prog in
  let r2 = Analyzer.analyze_session session prog in
  Alcotest.(check bool) "same outcomes" true (strip r1 = strip r2);
  Alcotest.(check int) "second run all hits" r2.stats.memo_lookups_full
    r2.stats.memo_hits_full;
  Alcotest.(check bool) "first run had misses" true
    (r1.stats.memo_hits_full < r1.stats.memo_lookups_full)

let test_session_save_load () =
  with_temp_file (fun path ->
      let prog = parse mirror_src in
      let s1 = Analyzer.create_session () in
      let r1 = Analyzer.analyze_session s1 prog in
      Analyzer.save_session s1 path;
      let s2 = Analyzer.load_session path in
      Alcotest.(check bool) "config restored" true
        (Analyzer.session_config s2 = Analyzer.session_config s1);
      let r2 = Analyzer.analyze_session s2 prog in
      Alcotest.(check bool) "same outcomes after reload" true (strip r1 = strip r2);
      Alcotest.(check int) "reloaded session: all hits" r2.stats.memo_lookups_full
        r2.stats.memo_hits_full)

let test_session_priming () =
  (* The paper's suggestion: prime a standard table from a benchmark
     suite, then compile something else. Shared shapes hit. *)
  let train = parse "for i = 1 to 10 do a[i] = a[i-1] + 1 end" in
  let fresh = parse "for i = 1 to 10 do zz[i] = zz[i-1] + 1 end" in
  let session = Analyzer.create_session () in
  ignore (Analyzer.analyze_session session train);
  let r = Analyzer.analyze_session session fresh in
  Alcotest.(check int) "different array, same shape: all hits"
    r.stats.memo_lookups_full r.stats.memo_hits_full

let test_session_version_mismatch () =
  with_temp_file (fun path ->
      let s1 = Analyzer.create_session () in
      Analyzer.save_session s1 path;
      (* Corrupt the version number (bytes 11-14 after the magic). *)
      let ic = open_in_bin path in
      let content = really_input_string ic (in_channel_length ic) in
      close_in ic;
      let bytes = Bytes.of_string content in
      Bytes.set bytes 14 '\xff';
      let oc = open_out_bin path in
      output_bytes oc bytes;
      close_out oc;
      Alcotest.(check bool) "version rejected" true
        (try ignore (Analyzer.load_session path); false with Failure _ -> true))

let test_within_nest_only () =
  (* Two separate nests touching the same array: skipped under the
     default, tested with --cross-nest semantics. *)
  let src =
    "for i = 1 to 10 do a[i] = 1 end\nfor j = 1 to 10 do t = a[j + 20] end"
  in
  let count cfg =
    List.length
      (List.filter
         (fun (r : Analyzer.pair_report) -> not r.self_pair)
         (Analyzer.analyze ~config:cfg (parse src)).pair_reports)
  in
  Alcotest.(check int) "default skips cross-nest" 0
    (count { (exact_with Analyzer.Memo_off) with Analyzer.within_nest_only = true });
  Alcotest.(check int) "cross-nest enabled" 1
    (count { (exact_with Analyzer.Memo_off) with Analyzer.within_nest_only = false })

let test_session_bad_file () =
  with_temp_file (fun path ->
      let oc = open_out_bin path in
      output_string oc "not a session at all";
      close_out oc;
      Alcotest.(check bool) "rejects garbage" true
        (try ignore (Analyzer.load_session path); false with Failure _ -> true))

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "features"
    [
      ( "swap",
        [
          Alcotest.test_case "involution" `Quick test_swap_involution;
          Alcotest.test_case "mirror keys" `Quick test_swap_mirror_keys;
          Alcotest.test_case "preserves solutions" `Quick test_swap_preserves_solutions;
        ] );
      ( "symmetric-memo",
        [
          Alcotest.test_case "collapses mirrors" `Quick test_symmetric_collapses_mirrors;
          Alcotest.test_case "mirrors directions" `Quick test_symmetric_mirrors_directions;
          qt prop_symmetric_transparent;
        ] );
      ( "dependence-kinds",
        [
          Alcotest.test_case "flow" `Quick test_kind_flow;
          Alcotest.test_case "anti" `Quick test_kind_anti;
          Alcotest.test_case "output" `Quick test_kind_output;
          Alcotest.test_case "loop independent" `Quick test_kind_loop_independent;
        ] );
      ( "sessions",
        [
          Alcotest.test_case "accumulates" `Quick test_session_accumulates;
          Alcotest.test_case "save/load" `Quick test_session_save_load;
          Alcotest.test_case "priming" `Quick test_session_priming;
          Alcotest.test_case "bad file" `Quick test_session_bad_file;
          Alcotest.test_case "version mismatch" `Quick test_session_version_mismatch;
          Alcotest.test_case "within-nest filtering" `Quick test_within_nest_only;
        ] );
    ]
