(* Baseline (inexact) test validation. The paper's point is that the
   traditional tests are conservative — sound but imprecise. We check
   both halves: they never contradict the exact analyzer on dependent
   pairs (soundness, property-tested), and there exist pairs where they
   lose precision (the coupled-subscript cases of section 1). *)

open Dda_core
open Dda_lang
open Dda_baselines.Banerjee

let parse = Parser.parse_program

let exact_config =
  {
    Analyzer.default_config with
    Analyzer.prune = Direction.no_pruning;
    memo = Analyzer.Memo_simple;
    run_pipeline = false;
    within_nest_only = false;
  }

let build_pairs prog =
  let sites = Affine.extract prog in
  let pairs = ref [] in
  let arr = Array.of_list sites in
  for i = 0 to Array.length arr - 1 do
    for j = i + 1 to Array.length arr - 1 do
      let s1 = arr.(i) and s2 = arr.(j) in
      if
        String.equal s1.Affine.array s2.Affine.array
        && (s1.Affine.role = `Write || s2.Affine.role = `Write)
      then
        match Build_problem.build s1 s2 with
        | Some p -> pairs := (s1, s2, p) :: !pairs
        | None -> ()
    done
  done;
  List.rev !pairs

let the_problem src =
  match build_pairs (parse src) with
  | [ (_, _, p) ] -> p
  | ps -> Alcotest.failf "expected one pair, got %d" (List.length ps)

(* ------------------------------------------------------------------ *)
(* Unit tests                                                          *)
(* ------------------------------------------------------------------ *)

let test_gcd_catches_parity () =
  (* 2i vs 2i'+1: even never equals odd. *)
  let p = the_problem "for i = 1 to 10 do a[2*i] = a[2*i+1] + 1 end" in
  Alcotest.(check bool) "gcd independent" true (gcd_test p = Independent);
  Alcotest.(check bool) "combined independent" true (combined p = Independent)

let test_bounds_catches_offset () =
  (* The paper's introduction: a[i] vs a[i+10] on 1..10. GCD cannot see
     it; the bounds test can. *)
  let p = the_problem "for i = 1 to 10 do a[i] = a[i+10] + 3 end" in
  Alcotest.(check bool) "gcd cannot" true (gcd_test p = Maybe_dependent);
  Alcotest.(check bool) "bounds can" true (bounds_test p = Independent)

let test_misses_coupled_subscripts () =
  (* i = i' and i = i' + 1 are jointly unsatisfiable, but each
     dimension alone is fine: the per-dimension baseline must miss it
     while the exact analyzer (via extended GCD) catches it. *)
  let src = "for i = 1 to 10 do a[i][i] = a[i][i+1] + 1 end" in
  let p = the_problem src in
  Alcotest.(check bool) "baseline misses" true (combined p = Maybe_dependent);
  let report = Analyzer.analyze ~config:exact_config (parse src) in
  let r =
    List.find (fun (r : Analyzer.pair_report) -> not r.self_pair) report.pair_reports
  in
  match r.outcome with
  | Analyzer.Gcd_independent -> ()
  | Analyzer.Tested t -> Alcotest.(check bool) "exact independent" false t.dependent
  | _ -> Alcotest.fail "unexpected outcome"

let test_dependent_stays_dependent () =
  let p = the_problem "for i = 1 to 10 do a[i+1] = a[i] + 3 end" in
  Alcotest.(check bool) "maybe dependent" true (combined p = Maybe_dependent)

let test_empty_loop_independent () =
  let p = the_problem "for i = 10 to 1 do a[i+1] = a[i] + 3 end" in
  Alcotest.(check bool) "zero-trip loop" true (bounds_test p = Independent)

let test_directions_single_vector () =
  (* The paper's setup: a[i] vs a[i-1] under an extra unused outer
     loop must come back as the single vector "star,<" — not three. *)
  let src =
    "for j = 1 to 10 do for i = 1 to 10 do a[i] = a[i-1] + 1 end end"
  in
  let p = the_problem src in
  match directions p with
  | Some [ v ] ->
    Alcotest.(check string) "(*,<)" "(*,<)"
      (Format.asprintf "%a" Direction.pp_vector v)
  | Some vs -> Alcotest.failf "expected 1 vector, got %d" (List.length vs)
  | None -> Alcotest.fail "expected dependence"

let test_directions_refine () =
  let p = the_problem "for i = 1 to 10 do a[i+1] = a[i] + 3 end" in
  match directions p with
  | Some [ v ] ->
    Alcotest.(check string) "(<)" "(<)" (Format.asprintf "%a" Direction.pp_vector v)
  | Some vs -> Alcotest.failf "expected 1 vector, got %d" (List.length vs)
  | None -> Alcotest.fail "expected dependence"

let test_directions_none_when_independent () =
  let p = the_problem "for i = 1 to 10 do a[i] = a[i+10] + 3 end" in
  Alcotest.(check bool) "no vectors" true (directions p = None)

(* ------------------------------------------------------------------ *)
(* Conservativeness properties                                         *)
(* ------------------------------------------------------------------ *)

let covered concrete claim =
  Array.length concrete = Array.length claim
  && (let ok = ref true in
      Array.iteri
        (fun i c ->
           match claim.(i) with
           | Direction.Dany -> ()
           | d -> if d <> c then ok := false)
        concrete;
      !ok)

let prop_baseline_sound =
  QCheck.Test.make
    ~name:"baseline never claims independence on a dependent pair" ~count:250
    Test_support.Gen_ast.arb_affine_nest
    (fun prog ->
       let report = Analyzer.analyze ~config:exact_config prog in
       let exact_by_locs =
         List.filter_map
           (fun (r : Analyzer.pair_report) ->
              match r.outcome with
              | Analyzer.Tested t -> Some ((r.loc1, r.loc2), (t.dependent, t.directions))
              | _ -> None)
           report.pair_reports
       in
       List.for_all
         (fun ((s1 : Affine.site), (s2 : Affine.site), p) ->
            match List.assoc_opt (s1.site_loc, s2.site_loc) exact_by_locs with
            | None -> true
            | Some (exact_dep, exact_vectors) -> (
                (* Verdict soundness. *)
                ((not exact_dep) || combined p = Maybe_dependent)
                &&
                (* Direction coverage. *)
                match directions p with
                | None -> not exact_dep
                | Some claimed ->
                  List.for_all
                    (fun c -> List.exists (covered c) claimed)
                    exact_vectors))
         (build_pairs prog))

let prop_baseline_never_beats_exact =
  QCheck.Test.make
    ~name:"exact independent set contains baseline independent set" ~count:250
    Test_support.Gen_ast.arb_affine_nest
    (fun prog ->
       let report = Analyzer.analyze ~config:exact_config prog in
       List.for_all
         (fun ((s1 : Affine.site), (s2 : Affine.site), p) ->
            match
              List.find_opt
                (fun (r : Analyzer.pair_report) ->
                   Dda_lang.Loc.equal r.loc1 s1.site_loc
                   && Dda_lang.Loc.equal r.loc2 s2.site_loc)
                report.pair_reports
            with
            | Some { outcome = Analyzer.Tested t; _ } ->
              (* Baseline independent implies exact independent. *)
              combined p = Maybe_dependent || not t.dependent
            | _ -> true)
         (build_pairs prog))

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "baselines"
    [
      ( "unit",
        [
          Alcotest.test_case "gcd catches parity" `Quick test_gcd_catches_parity;
          Alcotest.test_case "bounds catches offset" `Quick test_bounds_catches_offset;
          Alcotest.test_case "misses coupled subscripts" `Quick
            test_misses_coupled_subscripts;
          Alcotest.test_case "dependent stays dependent" `Quick
            test_dependent_stays_dependent;
          Alcotest.test_case "empty loop" `Quick test_empty_loop_independent;
          Alcotest.test_case "directions unused var" `Quick test_directions_single_vector;
          Alcotest.test_case "directions refine" `Quick test_directions_refine;
          Alcotest.test_case "directions independent" `Quick
            test_directions_none_when_independent;
        ] );
      ( "conservativeness",
        [ qt prop_baseline_sound; qt prop_baseline_never_beats_exact ] );
    ]
