(* Synthetic PERFECT Club tests: determinism, well-formedness, and the
   calibration regression — each pattern category must keep being
   decided (predominantly) by its intended cascade stage, or the
   benchmark tables silently drift. *)

open Dda_lang
open Dda_core
open Dda_perfect

let plain_nonsym =
  {
    Analyzer.default_config with
    Analyzer.directions = false;
    memo = Analyzer.Memo_off;
    symbolic = false;
  }

(* ------------------------------------------------------------------ *)
(* PRNG                                                                *)
(* ------------------------------------------------------------------ *)

let test_prng_deterministic () =
  let a = Prng.create 7 and b = Prng.create 7 in
  for _ = 1 to 100 do
    Alcotest.(check int) "same stream" (Prng.int a 1000) (Prng.int b 1000)
  done;
  let c = Prng.create 8 in
  let differs = ref false in
  for _ = 1 to 20 do
    if Prng.int a 1000 <> Prng.int c 1000 then differs := true
  done;
  Alcotest.(check bool) "different seeds differ" true !differs

let test_prng_ranges () =
  let r = Prng.create 1 in
  for _ = 1 to 1000 do
    let v = Prng.range r (-5) 5 in
    Alcotest.(check bool) "in range" true (v >= -5 && v <= 5)
  done;
  for _ = 1 to 100 do
    let v = Prng.int r 3 in
    Alcotest.(check bool) "int in range" true (v >= 0 && v < 3)
  done;
  Alcotest.(check bool) "choose" true (List.mem (Prng.choose r [ 1; 2; 3 ]) [ 1; 2; 3 ]);
  Alcotest.(check bool) "int 0 raises" true
    (try ignore (Prng.int r 0); false with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Patterns                                                            *)
(* ------------------------------------------------------------------ *)

let test_patterns_wellformed () =
  List.iter
    (fun cat ->
       let rng = Prng.create 99 in
       for _ = 1 to 50 do
         let src = Patterns.generate rng cat in
         match Parser.parse_program src with
         | prog ->
           Alcotest.(check (list Alcotest.reject)) (Patterns.category_name cat) []
             (List.map (fun _ -> ()) (Semant.check prog))
         | exception Parser.Error (msg, loc) ->
           Alcotest.failf "%s: parse error %s at %s in:\n%s"
             (Patterns.category_name cat) msg (Loc.to_string loc) src
       done)
    Patterns.all_categories

(* Calibration: at least 2/3 of the pairs a category produces must be
   decided by the stage it is named after (under the Table-1
   configuration: plain cascade, no symbolic terms). *)
let dominant_outcome cat =
  let rng = Prng.create 4242 in
  let total = ref 0 and hits = ref 0 in
  for _ = 1 to 80 do
    let prog = Parser.parse_program (Patterns.generate rng cat) in
    let report = Analyzer.analyze ~config:plain_nonsym prog in
    List.iter
      (fun (r : Analyzer.pair_report) ->
         incr total;
         let hit =
           match (cat, r.outcome) with
           | Patterns.Constant, Analyzer.Constant _ -> true
           | Patterns.Gcd_indep, Analyzer.Gcd_independent -> true
           | Patterns.Svpc, Analyzer.Tested { decided_by = Some Cascade.T_svpc; _ } -> true
           | Patterns.Acyclic, Analyzer.Tested { decided_by = Some Cascade.T_acyclic; _ } ->
             true
           | Patterns.Loop_residue,
             Analyzer.Tested { decided_by = Some Cascade.T_loop_residue; _ } -> true
           | Patterns.Fourier, Analyzer.Tested { decided_by = Some Cascade.T_fourier; _ } ->
             true
           | Patterns.Symbolic_mix, Analyzer.Assumed_dependent -> true
           | _ -> false
         in
         if hit then incr hits)
      report.pair_reports
  done;
  (!hits, !total)

let test_category_calibration () =
  List.iter
    (fun cat ->
       let hits, total = dominant_outcome cat in
       Alcotest.(check bool)
         (Printf.sprintf "%s: %d/%d decided by intended stage"
            (Patterns.category_name cat) hits total)
         true
         (total > 0 && 3 * hits >= 2 * total))
    Patterns.all_categories

(* ------------------------------------------------------------------ *)
(* Programs                                                            *)
(* ------------------------------------------------------------------ *)

let test_programs_complete () =
  Alcotest.(check int) "13 programs" 13 (List.length Programs.all);
  Alcotest.(check (list string)) "paper order"
    [ "AP"; "CS"; "LG"; "LW"; "MT"; "NA"; "OC"; "SD"; "SM"; "SR"; "TF"; "TI"; "WS" ]
    (List.map (fun (s : Programs.spec) -> s.name) Programs.all)

let test_programs_deterministic () =
  let spec = Option.get (Programs.find "NA") in
  Alcotest.(check string) "same source twice" (Programs.source spec)
    (Programs.source spec)

let test_programs_parse_and_check () =
  List.iter
    (fun (spec : Programs.spec) ->
       let src = Programs.source spec in
       match Parser.parse_program src with
       | prog ->
         (match Semant.check prog with
          | [] -> ()
          | errs ->
            Alcotest.failf "%s: %d semantic errors, first: %s" spec.name
              (List.length errs)
              (Format.asprintf "%a" Semant.pp_error (List.hd errs)))
       | exception Parser.Error (msg, loc) ->
         Alcotest.failf "%s: parse error %s at %s" spec.name msg (Loc.to_string loc))
    Programs.all

let test_programs_analyzable () =
  (* The whole suite runs through the analyzer without exceptions and
     produces a sensible number of pairs. *)
  let total_pairs = ref 0 in
  List.iter
    (fun (spec : Programs.spec) ->
       let prog = Parser.parse_program (Programs.source spec) in
       let report = Analyzer.analyze ~config:plain_nonsym prog in
       total_pairs := !total_pairs + report.stats.pairs)
    Programs.all;
  Alcotest.(check bool)
    (Printf.sprintf "suite yields %d pairs" !total_pairs)
    true
    (!total_pairs > 1500)

let () =
  Alcotest.run "perfect"
    [
      ( "prng",
        [
          Alcotest.test_case "deterministic" `Quick test_prng_deterministic;
          Alcotest.test_case "ranges" `Quick test_prng_ranges;
        ] );
      ( "patterns",
        [
          Alcotest.test_case "well-formed" `Quick test_patterns_wellformed;
          Alcotest.test_case "calibration" `Quick test_category_calibration;
        ] );
      ( "programs",
        [
          Alcotest.test_case "complete" `Quick test_programs_complete;
          Alcotest.test_case "deterministic" `Quick test_programs_deterministic;
          Alcotest.test_case "parse and check" `Quick test_programs_parse_and_check;
          Alcotest.test_case "analyzable" `Quick test_programs_analyzable;
        ] );
    ]
