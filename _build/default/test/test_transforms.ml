(* Loop-transformation legality and the dependence-graph export.

   The heavyweight check: on random affine nests, whenever the analyzer
   declares an interchange or reversal legal, actually performing the
   transformation and re-running the program must leave the final
   memory identical. A false "legal" here is a miscompilation. *)

open Dda_lang
open Dda_core

let parse = Parser.parse_program

let config =
  {
    Analyzer.default_config with
    Analyzer.prune = Direction.no_pruning;
    memo = Analyzer.Memo_simple;
    run_pipeline = false;
  }

let analyze_with_sites src_or_prog =
  let prog = src_or_prog in
  let sites = Affine.extract prog in
  let report = Analyzer.analyze ~config prog in
  (prog, sites, report)

(* Loop ids in source order: extraction numbers them pre-order. *)
let loop_ids sites =
  let ids = ref [] in
  List.iter
    (fun (s : Affine.site) ->
       List.iter
         (fun (c : Affine.loop_ctx) ->
            if not (List.mem c.Affine.lid !ids) then ids := c.Affine.lid :: !ids)
         s.loops)
    sites;
  List.sort compare !ids

(* ------------------------------------------------------------------ *)
(* Unit tests                                                          *)
(* ------------------------------------------------------------------ *)

let test_matmul_fully_permutable () =
  let _, sites, report =
    analyze_with_sites
      (parse
         "for i = 1 to 16 do\n\
         \  for j = 1 to 16 do\n\
         \    for k = 1 to 16 do\n\
         \      cc[i][j] = cc[i][j] + aa[i][k] * bb[k][j]\n\
         \    end\n\
         \  end\n\
          end")
  in
  match loop_ids sites with
  | [ a; b; c ] ->
    Alcotest.(check int) "all 6 orders legal" 6
      (List.length (Transforms.legal_permutations report [ a; b; c ]));
    Alcotest.(check bool) "i-j interchange" true
      (Transforms.interchange_legal report ~lid_a:a ~lid_b:b);
    Alcotest.(check bool) "j-k interchange" true
      (Transforms.interchange_legal report ~lid_a:b ~lid_b:c)
  | _ -> Alcotest.fail "expected 3 loops"

let test_skewed_stencil_interchange_illegal () =
  (* Dependence (<, >): the textbook interchange-illegal case. *)
  let _, sites, report =
    analyze_with_sites
      (parse
         "for i = 2 to 16 do\n\
         \  for j = 2 to 16 do\n\
         \    sk[i][j] = sk[i - 1][j + 1] + 1\n\
         \  end\n\
          end")
  in
  match loop_ids sites with
  | [ a; b ] ->
    Alcotest.(check bool) "interchange illegal" false
      (Transforms.interchange_legal report ~lid_a:a ~lid_b:b);
    Alcotest.(check int) "only identity legal" 1
      (List.length (Transforms.legal_permutations report [ a; b ]))
  | _ -> Alcotest.fail "expected 2 loops"

let test_wavefront_interchange_legal () =
  (* Dependences (<,=) and (=,<): interchange permutes them into each
     other; both orders legal, but neither loop is reversible. *)
  let _, sites, report =
    analyze_with_sites
      (parse
         "for i = 1 to 16 do\n\
         \  for j = 1 to 16 do\n\
         \    wf[i][j] = wf[i - 1][j] + wf[i][j - 1]\n\
         \  end\n\
          end")
  in
  match loop_ids sites with
  | [ a; b ] ->
    Alcotest.(check bool) "interchange legal" true
      (Transforms.interchange_legal report ~lid_a:a ~lid_b:b);
    Alcotest.(check bool) "outer not reversible" false
      (Transforms.reversal_legal report ~lid:a);
    Alcotest.(check bool) "inner not reversible" false
      (Transforms.reversal_legal report ~lid:b)
  | _ -> Alcotest.fail "expected 2 loops"

let test_reversal () =
  let _, sites, report =
    analyze_with_sites (parse "for i = 2 to 99 do\n  fr[i] = od[i - 1] + od[i + 1]\nend")
  in
  (match loop_ids sites with
   | [ a ] ->
     Alcotest.(check bool) "jacobi reversible" true (Transforms.reversal_legal report ~lid:a)
   | _ -> Alcotest.fail "expected 1 loop");
  let _, sites2, report2 =
    analyze_with_sites (parse "for i = 2 to 99 do\n  s[i] = s[i - 1] + 1\nend")
  in
  match loop_ids sites2 with
  | [ a ] ->
    Alcotest.(check bool) "recurrence not reversible" false
      (Transforms.reversal_legal report2 ~lid:a)
  | _ -> Alcotest.fail "expected 1 loop"

let test_fully_permutable () =
  let _, sites, report =
    analyze_with_sites
      (parse
         "for i = 1 to 16 do\n\
         \  for j = 1 to 16 do\n\
         \    for k = 1 to 16 do\n\
         \      cc[i][j] = cc[i][j] + aa[i][k] * bb[k][j]\n\
         \    end\n\
         \  end\n\
          end")
  in
  Alcotest.(check bool) "matmul band tilable" true
    (Transforms.fully_permutable report (loop_ids sites));
  let _, sites2, report2 =
    analyze_with_sites
      (parse
         "for i = 2 to 16 do\n  for j = 2 to 16 do\n    sk[i][j] = sk[i - 1][j + 1] + 1\n  end\nend")
  in
  Alcotest.(check bool) "skewed stencil not tilable" false
    (Transforms.fully_permutable report2 (loop_ids sites2));
  (* Wavefront (<,=),(=,<): all components non-negative: tilable even
     though neither loop is parallel. *)
  let _, sites3, report3 =
    analyze_with_sites
      (parse
         "for i = 1 to 16 do\n  for j = 1 to 16 do\n    wf[i][j] = wf[i - 1][j] + wf[i][j - 1]\n  end\nend")
  in
  Alcotest.(check bool) "wavefront tilable" true
    (Transforms.fully_permutable report3 (loop_ids sites3))

let prop_fully_permutable_implies_all_legal =
  QCheck.Test.make
    ~name:"fully permutable implies every permutation is legal" ~count:200
    Test_support.Gen_ast.arb_affine_nest
    (fun prog ->
       let sites = Affine.extract prog in
       let report = Analyzer.analyze ~config prog in
       let ids = loop_ids sites in
       let rec fact k = if k <= 1 then 1 else k * fact (k - 1) in
       (not (Transforms.fully_permutable report ids))
       || List.length (Transforms.legal_permutations report ids)
          = fact (List.length ids))

let test_conservative_outcomes_block () =
  (* A non-affine pair makes any reordering of its loops illegal. *)
  let _, sites, report =
    analyze_with_sites
      (parse
         "for i = 1 to 8 do\n\
         \  for j = 1 to 8 do\n\
         \    h[i * j] = h[i + j] + 1\n\
         \  end\n\
          end")
  in
  match loop_ids sites with
  | [ a; b ] ->
    Alcotest.(check bool) "interchange blocked" false
      (Transforms.interchange_legal report ~lid_a:a ~lid_b:b)
  | _ -> Alcotest.fail "expected 2 loops"

(* ------------------------------------------------------------------ *)
(* Depgraph                                                            *)
(* ------------------------------------------------------------------ *)

let contains needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let test_depgraph_dot () =
  let report =
    Analyzer.analyze ~config
      (parse "for i = 1 to 10 do\n  a[i + 1] = a[i] + 3\n  a[i] = 0\nend")
  in
  let dot = Depgraph.to_dot report in
  Alcotest.(check bool) "digraph" true (contains "digraph dependences" dot);
  Alcotest.(check bool) "write node" true (contains "a write @" dot);
  Alcotest.(check bool) "read node" true (contains "a read @" dot);
  Alcotest.(check bool) "flow edge" true (contains "flow (<)" dot);
  Alcotest.(check bool) "output edge" true (contains "output (<)" dot);
  Alcotest.(check bool) "anti edge" true (contains "anti (=)" dot);
  (* Independent pairs draw no edge: a 2-node graph of an independent
     pair has none. *)
  let indep = Analyzer.analyze ~config (parse "for i = 1 to 10 do b[i] = b[i+20] end") in
  Alcotest.(check bool) "no edges when independent" false
    (contains "->" (Depgraph.to_dot indep))

let test_depgraph_conservative_edges () =
  let report =
    Analyzer.analyze ~config (parse "for i = 1 to 8 do\n  h[i * i] = h[i] + 1\nend")
  in
  let dot = Depgraph.to_dot report in
  Alcotest.(check bool) "dashed assumed edge" true
    (contains "assumed (not affine)" dot && contains "style=dashed" dot)

(* ------------------------------------------------------------------ *)
(* Execution-validated legality                                        *)
(* ------------------------------------------------------------------ *)

(* Swap the two outermost loops of a perfect nest. *)
let interchange_outer (prog : Ast.program) =
  match prog with
  | [ { sdesc = Ast.For f1; sloc } ] -> (
      match f1.body with
      | [ { sdesc = Ast.For f2; sloc = sloc2 } ] ->
        Some
          [
            {
              Ast.sdesc =
                Ast.For
                  {
                    f2 with
                    body = [ { Ast.sdesc = Ast.For { f1 with body = f2.body }; sloc } ];
                  };
              sloc = sloc2;
            };
          ]
      | _ -> None)
  | _ -> None

(* Reverse the outermost loop (bounds swapped, step -1). *)
let reverse_outer (prog : Ast.program) =
  match prog with
  | [ { sdesc = Ast.For f; sloc } ] ->
    Some
      [
        {
          Ast.sdesc = Ast.For { f with lo = f.hi; hi = f.lo; step = Some (Ast.int_ (-1)) };
          sloc;
        };
      ]
  | _ -> None

let final_memory prog = (fst (Interp.final_state prog)).Interp.memory

let prop_legal_interchange_preserves_memory =
  QCheck.Test.make
    ~name:"a legal interchange leaves final memory identical" ~count:200
    Test_support.Gen_ast.arb_affine_nest
    (fun prog ->
       match interchange_outer prog with
       | None -> QCheck.assume_fail ()
       | Some swapped ->
         let sites = Affine.extract prog in
         let report = Analyzer.analyze ~config prog in
         (match loop_ids sites with
          | a :: b :: _ ->
            if Transforms.interchange_legal report ~lid_a:a ~lid_b:b then
              final_memory prog = final_memory swapped
            else true
          | _ -> true))

let prop_legal_reversal_preserves_memory =
  QCheck.Test.make ~name:"a legal reversal leaves final memory identical"
    ~count:200 Test_support.Gen_ast.arb_affine_nest
    (fun prog ->
       match reverse_outer prog with
       | None -> QCheck.assume_fail ()
       | Some reversed ->
         let sites = Affine.extract prog in
         let report = Analyzer.analyze ~config prog in
         (match loop_ids sites with
          | a :: _ ->
            if Transforms.reversal_legal report ~lid:a then
              final_memory prog = final_memory reversed
            else true
          | _ -> true))

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "transforms"
    [
      ( "legality",
        [
          Alcotest.test_case "matmul fully permutable" `Quick test_matmul_fully_permutable;
          Alcotest.test_case "skewed stencil illegal" `Quick
            test_skewed_stencil_interchange_illegal;
          Alcotest.test_case "wavefront legal" `Quick test_wavefront_interchange_legal;
          Alcotest.test_case "reversal" `Quick test_reversal;
          Alcotest.test_case "conservative outcomes block" `Quick
            test_conservative_outcomes_block;
          Alcotest.test_case "fully permutable" `Quick test_fully_permutable;
        ] );
      ( "depgraph",
        [
          Alcotest.test_case "dot output" `Quick test_depgraph_dot;
          Alcotest.test_case "conservative edges" `Quick test_depgraph_conservative_edges;
        ] );
      ( "execution-validated",
        [
          qt prop_legal_interchange_preserves_memory;
          qt prop_legal_reversal_preserves_memory;
          qt prop_fully_permutable_implies_all_legal;
        ] );
    ]
