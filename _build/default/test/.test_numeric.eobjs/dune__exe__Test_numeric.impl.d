test/test_numeric.ml: Alcotest Dda_numeric Ext_int List Option Printf QCheck QCheck_alcotest Qnum Stdlib Zint
