test/test_transforms.ml: Affine Alcotest Analyzer Ast Dda_core Dda_lang Depgraph Direction Interp List Parser QCheck QCheck_alcotest String Test_support Transforms
