test/test_linalg.ml: Alcotest Array Dda_linalg Dda_numeric List Matrix QCheck QCheck_alcotest Random Vec Zint
