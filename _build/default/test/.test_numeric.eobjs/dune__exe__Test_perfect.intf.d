test/test_perfect.mli:
