test/test_transforms.mli:
