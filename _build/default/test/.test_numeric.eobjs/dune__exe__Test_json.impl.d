test/test_json.ml: Alcotest Analyzer Dda_core Dda_lang Format Json_out List Seq String
