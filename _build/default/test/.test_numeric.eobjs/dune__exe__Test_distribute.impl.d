test/test_distribute.ml: Alcotest Analyzer Ast Dda_core Dda_lang Direction Distribute Interp List Loc Parser Printf QCheck QCheck_alcotest String Test_support
