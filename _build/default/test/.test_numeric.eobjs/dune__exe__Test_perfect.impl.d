test/test_perfect.ml: Alcotest Analyzer Cascade Dda_core Dda_lang Dda_perfect Format List Loc Option Parser Patterns Printf Prng Programs Semant
