test/test_lang.ml: Alcotest Ast Dda_lang Gen Interp Lexer List Loc Parser Pretty Printf QCheck QCheck_alcotest Semant String Test_support Token Trace
