test/test_distribute.mli:
