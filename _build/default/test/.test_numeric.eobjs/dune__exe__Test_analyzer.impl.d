test/test_analyzer.ml: Affine Alcotest Analyzer Array Ast Cascade Dda_core Dda_lang Dda_numeric Direction Format List Loc Parser QCheck QCheck_alcotest String Test_support Trace Zint
