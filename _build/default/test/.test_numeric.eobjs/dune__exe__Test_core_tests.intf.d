test/test_core_tests.mli:
