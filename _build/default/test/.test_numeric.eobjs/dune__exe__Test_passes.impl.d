test/test_passes.ml: Alcotest Ast Const_prop Dda_lang Dda_passes Expr_util Forward_subst Induction Interp List Normalize Parser Pipeline Pretty Printf QCheck QCheck_alcotest Test_support
