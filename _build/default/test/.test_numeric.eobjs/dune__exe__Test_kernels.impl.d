test/test_kernels.ml: Affine Alcotest Analyzer Ast Dda_core Dda_lang Dda_passes Dda_perfect Direction Kernels List Loc Option Parser Printf Semant Trace
