test/test_core_units.ml: Affine Alcotest Array Build_problem Canonical Consys Dda_core Dda_lang Dda_numeric Direction Format Gcd_test List Memo_table Option Parser Pretty Printf Problem Symexpr Zint
