test/test_baselines.ml: Affine Alcotest Analyzer Array Build_problem Dda_baselines Dda_core Dda_lang Direction Format List Parser QCheck QCheck_alcotest String Test_support
