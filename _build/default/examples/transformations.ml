(* Loop transformations as clients of direction vectors: interchange
   and reversal legality on classic nests, and the dependence graph a
   transformation framework would consume.

   Run with: dune exec examples/transformations.exe *)

open Dda_lang
open Dda_core

(* Concrete vectors, not wildcard summaries: legality is conservative
   about "*". *)
let config =
  {
    Analyzer.default_config with
    Analyzer.prune = Direction.no_pruning;
    memo = Analyzer.Memo_simple;
  }

let nests =
  [
    ( "matmul (famously fully permutable)",
      "for i = 1 to 32 do\n\
      \  for j = 1 to 32 do\n\
      \    for k = 1 to 32 do\n\
      \      cc[i][j] = cc[i][j] + aa[i][k] * bb[k][j]\n\
      \    end\n\
      \  end\n\
       end" );
    ( "skewed stencil (interchange would reverse a dependence)",
      "for i = 2 to 32 do\n\
      \  for j = 2 to 32 do\n\
      \    sk[i][j] = sk[i - 1][j + 1] + 1\n\
      \  end\n\
       end" );
    ( "wavefront (interchange fine, neither loop reversible)",
      "for i = 1 to 32 do\n\
      \  for j = 1 to 32 do\n\
      \    wf[i][j] = wf[i - 1][j] + wf[i][j - 1]\n\
      \  end\n\
       end" );
  ]

let () =
  List.iter
    (fun (title, src) ->
       Format.printf "== %s ==@." title;
       let prog = Parser.parse_program src in
       let sites = Affine.extract prog in
       let report = Analyzer.analyze ~config prog in
       let table = Affine.loop_table sites in
       let loops = List.map fst table in
       let name lid = List.assoc lid table in
       List.iter
         (fun lid ->
            Format.printf "  reverse %s: %s@." (name lid)
              (if Transforms.reversal_legal report ~lid then "legal" else "illegal"))
         loops;
       (match loops with
        | a :: b :: _ ->
          Format.printf "  interchange %s<->%s: %s@." (name a) (name b)
            (if Transforms.interchange_legal report ~lid_a:a ~lid_b:b then "legal"
             else "illegal")
        | _ -> ());
       if List.length loops <= 3 then begin
         Format.printf "  legal orders:";
         List.iter
           (fun perm ->
              Format.printf " (%s)" (String.concat "," (List.map name perm)))
           (Transforms.legal_permutations report loops);
         Format.printf "@."
       end;
       Format.printf "@.")
    nests;
  (* The dependence graph of the skewed stencil, as DOT. *)
  let prog = Parser.parse_program (snd (List.nth nests 1)) in
  print_endline "-- dependence graph (Graphviz) of the skewed stencil --";
  print_string (Depgraph.to_dot (Analyzer.analyze ~config prog))
