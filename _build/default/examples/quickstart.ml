(* Quickstart: parse a loop nest, run the exact dependence analyzer,
   and read the answers — the two motivating loops from the paper's
   introduction.

   Run with: dune exec examples/quickstart.exe *)

open Dda_lang
open Dda_core

let source =
  {|# The paper's first loop: writes a[1..10], reads a[11..20].
for i = 1 to 10 do
  a[i] = a[i + 10] + 3
end

# The paper's second loop: each iteration reads the previous write.
for i = 1 to 10 do
  b[i + 1] = b[i] + 3
end|}

let () =
  let program = Parser.parse_program source in

  (* The analyzer runs the optimizer prepass, extracts affine reference
     sites, and decides every same-array pair exactly. *)
  let report = Analyzer.analyze program in

  List.iter
    (fun (r : Analyzer.pair_report) ->
       if not r.self_pair then begin
         Format.printf "array %s: reference at %a vs reference at %a@."
           r.array_name Loc.pp r.loc1 Loc.pp r.loc2;
         match r.outcome with
         | Analyzer.Tested t when not t.dependent ->
           Format.printf "  -> INDEPENDENT: every iteration may run in parallel@."
         | Analyzer.Tested t ->
           Format.printf "  -> DEPENDENT";
           List.iter (fun v -> Format.printf " %a" Direction.pp_vector v) t.directions;
           (match t.distance with
            | Some d ->
              Format.printf " (distance %s)"
                (String.concat ","
                   (Array.to_list (Array.map Dda_numeric.Zint.to_string d)))
            | None -> ());
           Format.printf "@."
         | Analyzer.Constant dep ->
           Format.printf "  -> constant subscripts, %s@."
             (if dep then "same cell: dependent" else "different cells: independent")
         | Analyzer.Gcd_independent ->
           Format.printf "  -> INDEPENDENT (no integer solution at all)@."
         | Analyzer.Assumed_dependent ->
           Format.printf "  -> not affine: conservatively dependent@."
       end)
    report.pair_reports;

  Format.printf "@.Summary: %d pairs, %d independent, %d dependent.@."
    report.stats.pairs report.stats.independent_pairs report.stats.dependent_pairs
