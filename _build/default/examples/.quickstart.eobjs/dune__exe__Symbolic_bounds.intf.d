examples/symbolic_bounds.mli:
