examples/transformations.ml: Affine Analyzer Dda_core Dda_lang Depgraph Direction Format List Parser String Transforms
