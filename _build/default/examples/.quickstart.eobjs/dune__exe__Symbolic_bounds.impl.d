examples/symbolic_bounds.ml: Analyzer Dda_core Dda_lang Dda_passes Direction Format List Loc Parser Pretty
