examples/stencil.ml: Analyzer Array Dda_core Dda_lang Dda_numeric Direction Format List Loc Parser String
