examples/compile_to_c.mli:
