examples/loop_residue_graph.mli:
