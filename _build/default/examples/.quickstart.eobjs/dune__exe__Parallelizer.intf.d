examples/parallelizer.mli:
