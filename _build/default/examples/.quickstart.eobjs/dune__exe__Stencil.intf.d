examples/stencil.mli:
