examples/parallelizer.ml: Affine Analyzer Dda_core Dda_lang Dda_passes Format List Option Parser
