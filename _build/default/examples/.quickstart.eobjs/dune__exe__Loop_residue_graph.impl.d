examples/loop_residue_graph.ml: Array Consys Dda_core Dda_numeric Loop_residue Printf String Svpc Zint
