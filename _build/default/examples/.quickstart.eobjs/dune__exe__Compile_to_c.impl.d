examples/compile_to_c.ml: Affine Analyzer Dda_codegen Dda_core Dda_lang Dda_passes Dda_perfect List Option Parser Printf
