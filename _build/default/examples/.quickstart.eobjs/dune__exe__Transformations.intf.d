examples/transformations.mli:
