examples/quickstart.mli:
