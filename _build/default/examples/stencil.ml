(* Distance and direction vectors for stencil kernels: what a locality
   or tiling pass would consume. Shows the GCD-based distance fast path
   (section 6) and the case where only directions are available.

   Run with: dune exec examples/stencil.exe *)

open Dda_lang
open Dda_core

let stencils =
  [
    ("1-d three-point", "for i = 2 to 99 do\n  s[i] = s[i - 1] + s[i + 1]\nend");
    ( "2-d five-point",
      "for i = 2 to 99 do\n\
      \  for j = 2 to 99 do\n\
      \    g5[i][j] = g5[i - 1][j] + g5[i + 1][j] + g5[i][j - 1] + g5[i][j + 1]\n\
      \  end\n\
       end" );
    ( "skewed access (no constant distance)",
      "for i = 1 to 8 do\n\
      \  for j = 1 to 10 do\n\
      \    sk[10 * i + j] = sk[10 * (i + 2) + j] + 7\n\
      \  end\n\
       end" );
  ]

let () =
  List.iter
    (fun (name, src) ->
       Format.printf "== %s ==@." name;
       let report = Analyzer.analyze (Parser.parse_program src) in
       List.iter
         (fun (r : Analyzer.pair_report) ->
            match r.outcome with
            | Analyzer.Tested t when t.dependent && not r.self_pair ->
              Format.printf "  %a vs %a:" Loc.pp r.loc1 Loc.pp r.loc2;
              List.iter (fun v -> Format.printf " %a" Direction.pp_vector v) t.directions;
              (match t.distance with
               | Some d ->
                 Format.printf "  distance (%s)"
                   (String.concat ","
                      (Array.to_list (Array.map Dda_numeric.Zint.to_string d)))
               | None -> Format.printf "  [no constant distance]");
              Format.printf "@."
            | _ -> ())
         report.pair_reports;
       Format.printf "@.")
    stencils
