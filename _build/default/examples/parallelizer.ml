(* A miniature parallelizing "compiler" pass: analyze classic numerical
   kernels and report, loop by loop, what may run in parallel — the
   client application the paper's introduction motivates.

   Run with: dune exec examples/parallelizer.exe *)

open Dda_lang
open Dda_core

let kernels =
  [
    ( "vector add",
      "for i = 1 to 1000 do\n  c[i] = a[i] + b[i]\nend" );
    ( "prefix-style recurrence",
      "for i = 2 to 1000 do\n  a[i] = a[i - 1] + a[i]\nend" );
    ( "matrix multiply",
      "for i = 1 to 100 do\n\
      \  for j = 1 to 100 do\n\
      \    for k = 1 to 100 do\n\
      \      cc[i][j] = cc[i][j] + aa[i][k] * bb[k][j]\n\
      \    end\n\
      \  end\n\
       end" );
    ( "jacobi step (distinct arrays)",
      "for i = 2 to 99 do\n  fresh[i] = old[i - 1] + old[i + 1]\nend" );
    ( "gauss-seidel step (in place)",
      "for i = 2 to 99 do\n  g[i] = g[i - 1] + g[i + 1]\nend" );
    ( "red points of red-black sweep",
      "for i = 1 to 50 do\n  rb[2 * i] = rb[2 * i - 1] + rb[2 * i + 1]\nend" );
    ( "wavefront",
      "for i = 1 to 100 do\n\
      \  for j = 1 to 100 do\n\
      \    wf[i][j] = wf[i - 1][j] + wf[i][j - 1]\n\
      \  end\n\
       end" );
  ]

let () =
  List.iter
    (fun (name, src) ->
       Format.printf "== %s ==@." name;
       let program = Parser.parse_program src in
       let prepared = Dda_passes.Pipeline.run program in
       let sites = Affine.extract prepared in
       let config = { Analyzer.default_config with Analyzer.run_pipeline = false } in
       let report = Analyzer.analyze ~config prepared in
       let names = Affine.loop_table sites in
       List.iter
         (fun (lid, parallel) ->
            Format.printf "  loop %-3s %s@."
              (Option.value (List.assoc_opt lid names) ~default:"?")
              (if parallel then "parallel" else "SERIAL (carries a dependence)"))
         (Analyzer.parallel_loops report sites);
       Format.printf "@.")
    kernels
