(* The payoff pipeline end to end: analyze a kernel, prove loops
   parallel, and emit C where those loops carry OpenMP pragmas.
   (The test suite actually compiles this output with gcc -fopenmp and
   checks the 4-thread execution against the reference interpreter.)

   Run with: dune exec examples/compile_to_c.exe *)

open Dda_lang
open Dda_core

let () =
  let kernel = Option.get (Dda_perfect.Kernels.find "matmul") in
  print_endline ("# kernel: " ^ kernel.name);
  print_endline kernel.source;
  let prog = Dda_passes.Pipeline.run (Parser.parse_program kernel.source) in
  let sites = Affine.extract prog in
  let report =
    Analyzer.analyze
      ~config:{ Analyzer.default_config with Analyzer.run_pipeline = false }
      prog
  in
  let parallel = Analyzer.parallel_loops report sites in
  let names = Affine.loop_table sites in
  List.iter
    (fun (lid, p) ->
       Printf.printf "# loop %s: %s\n"
         (Option.value (List.assoc_opt lid names) ~default:"?")
         (if p then "parallel -> pragma" else "serial"))
    parallel;
  print_newline ();
  match Dda_codegen.C_emit.emit ~parallel prog with
  | Ok c -> print_string c
  | Error reason -> prerr_endline ("codegen rejected: " ^ reason)
