(* Symbolic testing (paper section 8): unknowns that cannot be removed
   by the optimizer become extra integer variables without bounds, and
   exactness is preserved. Also demonstrates the optimizer prepass
   turning the paper's induction-variable example affine.

   Run with: dune exec examples/symbolic_bounds.exe *)

open Dda_lang
open Dda_core

let show title src ~symbolic =
  Format.printf "== %s (symbolic %s) ==@." title (if symbolic then "on" else "off");
  let config = { Analyzer.default_config with Analyzer.symbolic } in
  let report = Analyzer.analyze ~config (Parser.parse_program src) in
  List.iter
    (fun (r : Analyzer.pair_report) ->
       if not r.self_pair then
         match r.outcome with
         | Analyzer.Assumed_dependent ->
           Format.printf "  %a vs %a: assumed dependent (cannot analyze)@." Loc.pp
             r.loc1 Loc.pp r.loc2
         | Analyzer.Gcd_independent ->
           Format.printf "  %a vs %a: independent (gcd)@." Loc.pp r.loc1 Loc.pp r.loc2
         | Analyzer.Tested t ->
           Format.printf "  %a vs %a: %s" Loc.pp r.loc1 Loc.pp r.loc2
             (if t.dependent then "dependent" else "INDEPENDENT");
           List.iter (fun v -> Format.printf " %a" Direction.pp_vector v) t.directions;
           Format.printf "@."
         | Analyzer.Constant _ -> ())
    report.pair_reports;
  Format.printf "@."

let () =
  (* The paper's section 8 program: after constant propagation and
     induction-variable substitution this becomes
     a[2i + 100] = a[2i + 201] + 3 — affine, no symbols needed. *)
  let s8_optimized =
    "n = 100\n\
     iz = 0\n\
     for i = 1 to 10 do\n\
    \  iz = iz + 2\n\
    \  a[iz + n] = a[iz + 2 * n + 1] + 3\n\
     end"
  in
  Format.printf "-- After the prepass the nest is --@.%s@."
    (Pretty.program_to_string
       (Dda_passes.Pipeline.run (Parser.parse_program s8_optimized)));
  show "paper s8, optimizer removes the unknowns" s8_optimized ~symbolic:false;

  (* When n really is unknown, only symbolic mode can reason. The
     offset 11 exceeds the loop range whatever n is: exact independence
     that non-symbolic analysis must give up on. *)
  let unknown = "read(n)\nfor i = 1 to 10 do\n  b[i + n] = b[i + n + 11] + 3\nend" in
  show "unknown n, provably independent" unknown ~symbolic:false;
  show "unknown n, provably independent" unknown ~symbolic:true;

  (* And a case that is genuinely dependent for some n. *)
  let dep = "read(n)\nfor i = 1 to 10 do\n  c[i + n] = c[i + 2 * n + 1] + 3\nend" in
  show "unknown n, dependent for suitable n" dep ~symbolic:true
