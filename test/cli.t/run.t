The ddtest command-line driver, end to end.

The paper's two introductory loops:

  $ cat > intro.dd <<'EOF'
  > # first loop: independent
  > for i = 1 to 10 do
  >   a[i] = a[i + 10] + 3
  > end
  > # second loop: dependent, distance 1
  > for i = 1 to 10 do
  >   b[i + 1] = b[i] + 3
  > end
  > EOF

  $ ddtest analyze intro.dd
  a[self]  3:3 x 3:3:  independent
  a[pair]  3:3 x 3:10:  independent
  b[self]  7:3 x 7:3:  independent
  b[pair]  7:3 x 7:14:  dependent directions: (<)[flow] distance: (1)

Statistics show which tests ran and what memoization saw:

  $ ddtest analyze intro.dd --stats | tail -n 10
  -- statistics --
  pairs analyzed:      4
  constant subscripts: 0
  gcd independent:     0
  assumed dependent:   0
  plain tests:         svpc=0 acyclic=0 loop-residue=0 fourier=0
  direction tests:     svpc=3 acyclic=0 loop-residue=0 fourier=0
  memo (gcd table):    3 lookups, 0 hits, 3 unique
  memo (full table):   4 lookups, 1 hits, 3 unique
  verdicts:            3 independent, 1 dependent


The parallelizer client:

  $ ddtest parallel intro.dd
  loop i (id 0): PARALLELIZABLE
  loop i (id 1): serial

Dependence kinds on a small mixed nest:

  $ cat > kinds.dd <<'EOF'
  > for i = 1 to 10 do
  >   a[i + 1] = a[i] + 3
  >   a[i] = 0
  > end
  > EOF

  $ ddtest analyze kinds.dd
  a[self]  2:3 x 2:3:  independent
  a[pair]  2:3 x 2:14:  dependent directions: (<)[flow] distance: (1)
  a[pair]  2:3 x 3:3:  dependent directions: (<)[output] distance: (1)
  a[pair]  2:14 x 3:3:  dependent directions: (=)[anti] distance: (0)
  a[self]  3:3 x 3:3:  independent

The optimizer prepass (the paper's section 8 example):

  $ cat > s8.dd <<'EOF'
  > n = 100
  > iz = 0
  > for i = 1 to 10 do
  >   iz = iz + 2
  >   a[iz + n] = a[iz + 2 * n + 1] + 3
  > end
  > EOF

  $ ddtest passes s8.dd
  n = 100
  iz = 0
  for i = 1 to 10 do
    a[2 * i + 100] = a[2 * i + 201] + 3
  end
  if 10 >= 1 then
    iz = 20
  end

  $ ddtest analyze s8.dd
  a[self]  5:3 x 5:3:  independent
  a[pair]  5:3 x 5:15:  independent (extended gcd)

Symbolic terms (section 8) versus giving up:

  $ cat > sym.dd <<'EOF'
  > read(n)
  > for i = 1 to 10 do
  >   b[i + n] = b[i + n + 11] + 3
  > end
  > EOF

  $ ddtest analyze sym.dd
  b[self]  3:3 x 3:3:  independent
  b[pair]  3:3 x 3:14:  independent

  $ ddtest analyze sym.dd --symbolic false
  b[self]  3:3 x 3:3:  assumed dependent (not affine)
  b[pair]  3:3 x 3:14:  assumed dependent (not affine)

Memoization persisted across runs: the second compilation hits on
every pair.

  $ ddtest analyze intro.dd --memo-file table.bin --stats | grep 'memo (full'
  memo (full table):   4 lookups, 1 hits, 3 unique

  $ ddtest analyze intro.dd --memo-file table.bin --stats | grep 'memo (full'
  memo (full table):   4 lookups, 4 hits, 3 unique

The loop-residue graph of a banded nest (Graphviz):

  $ cat > band.dd <<'EOF'
  > read(n)
  > for i = 1 to n do
  >   for j = i - 2 to i + 2 do
  >     a[i - j] = a[i - j + 1] + 1
  >   end
  > end
  > EOF

  $ ddtest graph band.dd
  /* pair 4:5 x 4:16 */
  digraph loop_residue {
    t2 -> t1 [label="1"];
    t1 -> t2 [label="3"];
    t2 -> t1 [label="2"];
    t1 -> t2 [label="2"];
    t1 -> n0 [label="-1"];
  }
  


A synthetic PERFECT Club program is deterministic:

  $ ddtest perfect TI > ti1.dd
  $ ddtest perfect TI > ti2.dd
  $ cmp ti1.dd ti2.dd

  $ ddtest perfect NOPE
  unknown program NOPE; available: AP CS LG LW MT NA OC SD SM SR TF TI WS
  [1]

Errors are reported with positions:

  $ printf 'for i = 1 to do a[i] = 1 end' > bad.dd
  $ ddtest analyze bad.dd
  bad.dd:1:14: syntax error: expected an expression (found 'do')
  [1]

Malformed input and bad usage are diagnosed — never a raw backtrace:

  $ printf 'for i = 1 to 99999999999999999999999 do a[i] = 1 end' > huge.dd
  $ ddtest analyze huge.dd
  huge.dd:1:37: lexical error: integer literal out of range: 99999999999999999999999
  [1]

  $ ddtest analyze nosuch.dd
  ddtest: error: nosuch.dd: No such file or directory
  [1]

  $ ddtest analyze .
  ddtest: error: .: is a directory
  [1]

  $ ddtest check bad.dd --budget-steps 0
  ddtest: error: --budget-steps must be positive
  [1]

  $ ddtest batch intro.dd --retries=-1 2>&1 | head -1
  ddtest: error: Batch.run: retries must be >= 0


Allen-Kennedy loop distribution: statements grouped by dependence SCC,
recurrences isolated into serial loops, the rest vectorizable.

  $ cat > dist.dd <<'DDEOF'
  > for i = 2 to 20 do
  >   a[i] = b[i] + 1
  >   c[i] = a[i - 1] * 2
  >   r[i] = r[i - 1] + c[i]
  > end
  > DDEOF

  $ ddtest distribute dist.dd
  group 0 (parallel): 2:3
  group 1 (parallel): 3:3
  group 2 (serial): 4:3
  
  -- distributed program --
  for i = 2 to 20 do
    a[i] = b[i] + 1
  end
  for i = 2 to 20 do
    c[i] = a[i - 1] * 2
  end
  for i = 2 to 20 do
    r[i] = r[i - 1] + c[i]
  end

Loop transformation legality (matmul is fully permutable):

  $ cat > mm.dd <<'DDEOF'
  > for i = 1 to 16 do
  >   for j = 1 to 16 do
  >     for k = 1 to 16 do
  >       cc[i][j] = cc[i][j] + aa[i][k] * bb[k][j]
  >     end
  >   end
  > end
  > DDEOF

  $ ddtest transform mm.dd
  loop i: reversible
  loop j: reversible
  loop k: NOT reversible
  interchange i <-> j: legal
  interchange j <-> k: legal
  legal loop orders: (i,j,k) (i,k,j) (j,i,k) (j,k,i) (k,i,j) (k,j,i)
  band fully permutable (tilable): yes

The dependence graph of the recurrence, in Graphviz:

  $ ddtest depgraph dist.dd | grep -c 'label='
  9

Self-validation, two ways: every verdict certificate-checked against
the original problem, and (with --trace) compared to the dependences
actually observed under the tracing interpreter.

  $ ddtest check dist.dd
  OK: 6 pairs, 9 certificates checked; 0 errors, 0 warnings

  $ ddtest check --trace dist.dd
  OK: all 6 pairs agree with the execution trace

JSON output for tooling:

  $ ddtest analyze dist.dd --format json | tr -d ' \n' | head -c 120
  {"pairs":[{"array":"a","ref1":{"loc":"2:3","role":"write"},"ref2":{"loc":"2:3","role":"write"},"self":true,"common_loops

The paper's "standard table": prime a memo file from the whole suite,
then compile against it.

  $ ddtest prime table2.bin
  primed table2.bin from the 13 synthetic PERFECT programs

  $ ddtest analyze intro.dd --memo-file table2.bin --stats | grep 'memo (full'
  memo (full table):   4 lookups, 3 hits, 101 unique

Annotated re-emission (the output is itself valid input):

  $ ddtest annotate intro.dd
  # PARALLEL
  for i = 1 to 10 do
    a[i] = a[i + 10] + 3
  end
  # serial (carries a dependence)
  for i = 1 to 10 do
    b[i + 1] = b[i] + 3
  end

  $ ddtest annotate intro.dd | ddtest check --trace -
  OK: all 4 pairs agree with the execution trace

Compilation to C: a parallel loop carries the OpenMP pragma and the
program is accepted by a real C compiler.

  $ cat > vadd.dd <<'DDEOF'
  > for i = 1 to 100 do
  >   c[i] = a[i] + b[i]
  > end
  > DDEOF

  $ ddtest cc vadd.dd | grep pragma
      #pragma omp parallel for lastprivate(v_i)

  $ ddtest cc vadd.dd > vadd.c && gcc -fopenmp -o vadd vadd.c && ./vadd | head -2
  i=100

  $ ddtest cc dist.dd | grep -c pragma
  0
  [1]

Symbolic bounds are outside the C back end's scope:

  $ ddtest cc sym.dd
  cannot compile to C: read(n) is not supported
  [1]
