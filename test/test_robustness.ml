(* Resource governance and fault injection: budget accounting, the
   failpoint harness, degraded-verdict soundness, and the batch
   engine's retry/quarantine isolation. *)

open Dda_numeric
open Dda_core
open Dda_engine
open Test_support

let z = Zint.of_int

(* ------------------------------------------------------------------ *)
(* Budget                                                              *)
(* ------------------------------------------------------------------ *)

let test_budget_steps () =
  let b = Budget.create { Budget.default_limits with max_steps = Some 10 } in
  for _ = 1 to 10 do
    Budget.tick b
  done;
  Alcotest.(check int) "steps counted" 10 (Budget.steps_used b);
  Alcotest.check_raises "11th step exhausts" (Budget.Exhausted Budget.Steps)
    (fun () -> Budget.tick b);
  (* Sticky: once spent, every later check re-raises. *)
  Alcotest.check_raises "sticky" (Budget.Exhausted Budget.Steps) (fun () ->
      Budget.check_rows b 1);
  Alcotest.(check bool) "spent recorded" true
    (Budget.spent b = Some Budget.Steps)

let test_budget_rows_and_coeff () =
  let b =
    Budget.create
      { Budget.default_limits with max_rows = Some 5; max_coeff_bits = Some 8 }
  in
  Budget.check_rows b 5;
  Alcotest.check_raises "row cap" (Budget.Exhausted Budget.Rows) (fun () ->
      Budget.check_rows b 6);
  let b =
    Budget.create
      { Budget.default_limits with max_rows = Some 5; max_coeff_bits = Some 8 }
  in
  Budget.check_coeff b (z 256);
  Budget.check_coeff b (z (-256));
  Alcotest.check_raises "coeff cap" (Budget.Exhausted Budget.Coeff) (fun () ->
      Budget.check_coeff b (z 257))

let test_budget_cancel () =
  let calls = ref 0 in
  let b =
    Budget.create
      ~cancel:(fun () ->
        incr calls;
        !calls > 1)
      Budget.default_limits
  in
  (* The cancel callback is polled every few dozen ticks, not on each. *)
  Alcotest.check_raises "cancel becomes Deadline"
    (Budget.Exhausted Budget.Deadline) (fun () ->
      for _ = 1 to 100_000 do
        Budget.tick b
      done)

let test_budget_fastpath_charging () =
  (* Every coefficient here is tiny, so the whole solve stays on the
     Zint native-int fast path — step charging must fire there exactly
     as on the limb path: an unlimited run's step count, replayed as
     the cap, succeeds with the same verdict, and one step fewer
     exhausts with [Steps]. *)
  let sys =
    Consys.make ~nvars:3
      [
        Consys.row_of_ints [ 1; 1; -1 ] 4;
        Consys.row_of_ints [ -1; 2; 1 ] 5;
        Consys.row_of_ints [ 2; -1; 0 ] 3;
        Consys.row_of_ints [ 0; -1; 1 ] 2;
        Consys.row_of_ints [ -1; 0; 0 ] 0;
        Consys.row_of_ints [ 0; -1; 0 ] 0;
        Consys.row_of_ints [ 0; 0; -1 ] 0;
      ]
  in
  let b0 = Budget.unlimited () in
  let r0 = Fourier.run ~budget:b0 sys in
  let steps = Budget.steps_used b0 in
  Alcotest.(check bool) "a Small-only solve is charged steps" true (steps > 0);
  let run cap =
    Fourier.run
      ~budget:(Budget.create { Budget.default_limits with max_steps = Some cap })
      sys
  in
  let same_verdict a b =
    match (a, b) with
    | Fourier.Infeasible _, Fourier.Infeasible _ -> true
    | Fourier.Feasible _, Fourier.Feasible _ -> true
    | Fourier.Unknown, Fourier.Unknown -> true
    | Fourier.Exhausted x, Fourier.Exhausted y -> x = y
    | _ -> false
  in
  Alcotest.(check bool) "exact step cap reproduces the verdict" true
    (same_verdict r0 (run steps));
  Alcotest.(check bool) "one step fewer exhausts with Steps" true
    (match run (steps - 1) with
     | Fourier.Exhausted Budget.Steps -> true
     | _ -> false)

let test_budget_unlimited () =
  let b = Budget.unlimited () in
  for _ = 1 to 100_000 do
    Budget.tick b;
    Budget.check_rows b 1_000_000;
    Budget.check_coeff b (Zint.pow (z 2) 200)
  done

(* ------------------------------------------------------------------ *)
(* Failpoint                                                           *)
(* ------------------------------------------------------------------ *)

let with_failpoints spec f =
  Failpoint.set spec;
  Fun.protect ~finally:Failpoint.clear f

let test_failpoint_spec_errors () =
  (match Failpoint.configure "nonsense.site=raise" with
   | Ok () -> Alcotest.fail "unknown site accepted"
   | Error _ -> ());
  (match Failpoint.configure "fourier.solve=frobnicate" with
   | Ok () -> Alcotest.fail "unknown action accepted"
   | Error _ -> ());
  (match Failpoint.configure "fourier.solve=raise@x" with
   | Ok () -> Alcotest.fail "bad window accepted"
   | Error _ -> ());
  match Failpoint.configure "" with
  | Ok () -> ()
  | Error e -> Alcotest.failf "empty spec rejected: %s" e

let test_failpoint_windows () =
  with_failpoints "fourier.solve=raise@2" (fun () ->
      Failpoint.hit "fourier.solve" (* hit 1: pass *);
      Alcotest.check_raises "2nd hit fires"
        (Failpoint.Injected "fourier.solve") (fun () ->
          Failpoint.hit "fourier.solve");
      Failpoint.hit "fourier.solve" (* hit 3: pass again *);
      Alcotest.(check int) "hits counted" 3 (Failpoint.hits "fourier.solve"));
  (* Cleared: the same site is inert again. *)
  Failpoint.hit "fourier.solve"

let test_failpoint_exhaust_action () =
  with_failpoints "memo.find_or_add=exhaust" (fun () ->
      Alcotest.check_raises "exhaust action spends the budget"
        (Budget.Exhausted Budget.Injected) (fun () ->
          Failpoint.hit "memo.find_or_add"))

(* ------------------------------------------------------------------ *)
(* Degraded verdicts are sound over-approximations                     *)
(* ------------------------------------------------------------------ *)

let tiny_limits = { Budget.default_limits with max_steps = Some 25 }

let prop_budget_over_approximates =
  (* Under any budget, an Independent answer still carries a real
     certificate (the checker is exercised elsewhere); here: whenever
     the tiny-budget cascade decides Independent, brute force agrees,
     and exhaustion is the only other non-exact outcome — never a
     crash. *)
  QCheck.Test.make
    ~name:"tiny-budget cascade verdicts over-approximate brute force"
    ~count:500 Gen_sys.arb_boxed
    (fun boxed ->
       let truth = Gen_sys.brute_feasible boxed in
       let budget = Budget.create tiny_limits in
       match (Cascade.run ~budget boxed.Gen_sys.sys).Cascade.verdict with
       | Cascade.Independent _ -> not truth
       | Cascade.Dependent w ->
         truth && Consys.satisfies_all w boxed.Gen_sys.sys
       | Cascade.Unknown | Cascade.Exhausted _ -> true)

let parse = Dda_lang.Parser.parse_program

let analyze_tiny prog =
  let config = { Analyzer.default_config with limits = tiny_limits } in
  Analyzer.analyze ~config prog

let prop_degraded_flagged =
  (* Whole-program robustness: with a tiny step budget the analyzer
     never raises, every degraded pair is reported dependent-inexact,
     and the stats count matches the flags. *)
  QCheck.Test.make
    ~name:"tiny-budget analysis degrades to flagged conservative verdicts"
    ~count:60 Gen_ast.arb_affine_nest
    (fun prog ->
       let report = analyze_tiny prog in
       let flagged =
         List.filter
           (fun (r : Analyzer.pair_report) ->
              match r.Analyzer.outcome with
              | Analyzer.Tested { degraded; _ } -> degraded <> None
              | _ -> false)
           report.Analyzer.pair_reports
       in
       List.for_all
         (fun (r : Analyzer.pair_report) ->
            match r.Analyzer.outcome with
            | Analyzer.Tested { dependent; unknown; _ } ->
              dependent && unknown
            | _ -> false)
         flagged
       && report.Analyzer.stats.Analyzer.degraded_pairs = List.length flagged)

let test_deadline_degrades () =
  (* An already-expired deadline: analysis still terminates with a
     report, conservatively flagged wherever the cascade would have
     run. *)
  let prog =
    parse "for i = 1 to 40 do\n  a[3 * i + 1] = a[5 * i + 2] + 1\nend"
  in
  let report = Analyzer.analyze ~cancel:(fun () -> true) prog in
  List.iter
    (fun (r : Analyzer.pair_report) ->
       match r.Analyzer.outcome with
       | Analyzer.Tested { degraded; dependent; _ } ->
         if degraded = Some Budget.Deadline then
           Alcotest.(check bool) "deadline verdicts stay conservative" true
             dependent
       | _ -> ())
    report.Analyzer.pair_reports

(* ------------------------------------------------------------------ *)
(* Batch fault isolation                                               *)
(* ------------------------------------------------------------------ *)

let corpus () =
  List.map
    (fun (name, src) -> { Batch.name; program = parse src })
    [
      ("one.dd", "for i = 1 to 10 do\n  a[i + 1] = a[i] + 1\nend");
      ("two.dd", "for i = 1 to 10 do\n  b[2 * i] = b[i] + 1\nend");
      ("three.dd", "for i = 1 to 10 do\n  c[i] = c[i + 10] + 1\nend");
    ]

let test_batch_retry_recovers () =
  with_failpoints "batch.item=raise@1" (fun () ->
      let r = Batch.run ~retries:1 ~backoff_ms:0 ~jobs:1 (corpus ()) in
      Alcotest.(check int) "all items analyzed" 3 (List.length r.Batch.items);
      Alcotest.(check int) "nothing quarantined" 0
        (List.length r.Batch.quarantined);
      Alcotest.(check int) "one retry" 1 r.Batch.retried;
      match r.Batch.items with
      | first :: rest ->
        Alcotest.(check int) "first item took two attempts" 2
          first.Batch.attempts;
        List.iter
          (fun (a : Batch.analyzed) ->
             Alcotest.(check int) "others clean" 1 a.Batch.attempts)
          rest
      | [] -> Alcotest.fail "empty result")

let test_batch_quarantine () =
  (* The first item fails on every attempt; the rest of the corpus
     still completes, in order, with the failure recorded. *)
  with_failpoints "batch.item=raise@1-2" (fun () ->
      let r = Batch.run ~retries:1 ~backoff_ms:0 ~jobs:1 (corpus ()) in
      Alcotest.(check int) "two items analyzed" 2 (List.length r.Batch.items);
      (match r.Batch.quarantined with
       | [ q ] ->
         Alcotest.(check string) "the failing item" "one.dd" q.Batch.q_name;
         Alcotest.(check int) "its index" 0 q.Batch.q_index;
         Alcotest.(check int) "both attempts used" 2 q.Batch.q_attempts;
         let contains hay needle =
           let nh = String.length hay and nn = String.length needle in
           let rec at i =
             i + nn <= nh && (String.sub hay i nn = needle || at (i + 1))
           in
           at 0
         in
         Alcotest.(check bool) "error names the failpoint" true
           (contains q.Batch.q_error "batch.item")
       | l -> Alcotest.failf "expected 1 quarantined, got %d" (List.length l));
      Alcotest.(check (list string)) "survivors in input order"
        [ "two.dd"; "three.dd" ]
        (List.map (fun (a : Batch.analyzed) -> a.Batch.name) r.Batch.items);
      (* Merged stats cover survivors only: pairs from 2 programs. *)
      let solo = Batch.run ~jobs:1 (List.tl (corpus ())) in
      Alcotest.(check int) "stats exclude the quarantined item"
        solo.Batch.merged.Analyzer.pairs r.Batch.merged.Analyzer.pairs)

let test_batch_timeout_degrades () =
  (* A 0ms deadline: items still come back (degraded where the cascade
     ran), nothing is quarantined, the batch terminates. *)
  let r = Batch.run ~item_timeout_ms:0 ~jobs:2 (corpus ()) in
  Alcotest.(check int) "all items analyzed" 3 (List.length r.Batch.items);
  Alcotest.(check int) "nothing quarantined" 0 (List.length r.Batch.quarantined)

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "robustness"
    [
      ( "budget",
        [
          Alcotest.test_case "step accounting" `Quick test_budget_steps;
          Alcotest.test_case "row and coefficient caps" `Quick
            test_budget_rows_and_coeff;
          Alcotest.test_case "cooperative cancel" `Quick test_budget_cancel;
          Alcotest.test_case "fast-path step charging" `Quick
            test_budget_fastpath_charging;
          Alcotest.test_case "unlimited never exhausts" `Quick
            test_budget_unlimited;
        ] );
      ( "failpoint",
        [
          Alcotest.test_case "spec validation" `Quick test_failpoint_spec_errors;
          Alcotest.test_case "hit windows" `Quick test_failpoint_windows;
          Alcotest.test_case "exhaust action" `Quick
            test_failpoint_exhaust_action;
        ] );
      ( "degraded",
        [
          qt prop_budget_over_approximates;
          qt prop_degraded_flagged;
          Alcotest.test_case "expired deadline degrades" `Quick
            test_deadline_degrades;
        ] );
      ( "batch",
        [
          Alcotest.test_case "retry recovers" `Quick test_batch_retry_recovers;
          Alcotest.test_case "quarantine isolates" `Quick test_batch_quarantine;
          Alcotest.test_case "timeout degrades, not kills" `Quick
            test_batch_timeout_degrades;
        ] );
    ]
