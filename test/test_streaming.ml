(* The streaming batch pipeline and its corpus fuzzer: fuzzed programs
   are always well-formed and deterministic in the seed; streaming a
   corpus produces exactly the in-memory engine's reports and metric
   deltas; a run killed at a random item and resumed from its journal
   reproduces the uninterrupted run byte for byte; and the fuzzer's
   small profile survives the exhaustive-enumeration oracle. *)

open Dda_lang
open Dda_core
open Dda_engine
open Dda_perfect

(* ------------------------------------------------------------------ *)
(* Fuzzer                                                              *)
(* ------------------------------------------------------------------ *)

let arb_profile_seed_index =
  QCheck.make
    ~print:(fun (p, s, i) ->
      Printf.sprintf "(%s, seed=%d, index=%d)" (Fuzz.profile_name p) s i)
    QCheck.Gen.(
      triple (oneofl Fuzz.all_profiles) (int_bound 1_000_000)
        (int_bound 10_000))

let prop_fuzz_well_formed =
  QCheck.Test.make ~name:"fuzzed programs parse and pass semantic checks"
    ~count:300 arb_profile_seed_index (fun (profile, seed, index) ->
      let text = Fuzz.program profile ~seed ~index in
      match Parser.parse_program text with
      | exception Parser.Error (msg, _) ->
        QCheck.Test.fail_reportf "parse error: %s\n%s" msg text
      | exception Lexer.Error (msg, _) ->
        QCheck.Test.fail_reportf "lex error: %s\n%s" msg text
      | prog -> (
        match Semant.check prog with
        | [] -> true
        | errs ->
          QCheck.Test.fail_reportf "semant errors: %s\n%s"
            (String.concat "; "
               (List.map (fun e -> e.Semant.msg) errs))
            text))

let prop_fuzz_deterministic =
  QCheck.Test.make ~name:"same seed yields a byte-identical corpus"
    ~count:100 arb_profile_seed_index (fun (profile, seed, index) ->
      String.equal
        (Fuzz.program profile ~seed ~index)
        (Fuzz.program profile ~seed ~index))

let test_fuzz_seed_sensitivity () =
  (* Different seeds (or indices) do diverge — the corpus is not one
     program repeated. *)
  let texts =
    List.init 20 (fun i -> Fuzz.program Fuzz.Mixed ~seed:42 ~index:i)
    @ List.init 5 (fun s -> Fuzz.program Fuzz.Mixed ~seed:s ~index:0)
  in
  let distinct = List.sort_uniq String.compare texts in
  Alcotest.(check bool)
    "at least half the corpus is distinct" true
    (List.length distinct > List.length texts / 2)

(* ------------------------------------------------------------------ *)
(* Streamed == in-memory                                               *)
(* ------------------------------------------------------------------ *)

(* The corpus both engines see: exactly what [Stream.of_fuzz] pulls,
   materialized for the in-memory engine. *)
let fuzz_names_and_texts ~seed n =
  List.init n (fun index ->
      ( Printf.sprintf "fuzz:small:%d:%d" seed index,
        Fuzz.program Fuzz.Small ~seed ~index ))

let counter_names = [ "batch.items"; "batch.retries"; "batch.quarantined" ]

let deltas before after =
  List.map
    (fun k ->
      Dda_obs.Metrics.find_counter after k
      - Dda_obs.Metrics.find_counter before k)
    counter_names

let prop_stream_matches_inmem =
  QCheck.Test.make
    ~name:"streamed reports and metric deltas equal the in-memory engine's"
    ~count:20
    (QCheck.make
       ~print:(fun (s, n) -> Printf.sprintf "(seed=%d, n=%d)" s n)
       QCheck.Gen.(pair (int_bound 100_000) (1 -- 4)))
    (fun (seed, n) ->
      let corpus = fuzz_names_and_texts ~seed n in
      let items =
        List.map
          (fun (name, text) ->
            { Batch.name; program = Parser.parse_program text })
          corpus
      in
      let before = Dda_obs.Metrics.snapshot () in
      let bres = Batch.run ~jobs:2 items in
      let mid = Dda_obs.Metrics.snapshot () in
      let streamed = ref [] in
      let summary =
        Stream.run ~jobs:3
          ~render:(fun o ->
            streamed := o :: !streamed;
            "")
          ~emit:ignore
          (Stream.of_fuzz ~profile:Fuzz.Small ~seed n)
      in
      let after = Dda_obs.Metrics.snapshot () in
      if deltas before mid <> deltas mid after then
        QCheck.Test.fail_reportf "metric deltas differ: inmem %s, stream %s"
          (String.concat "," (List.map string_of_int (deltas before mid)))
          (String.concat "," (List.map string_of_int (deltas mid after)));
      if summary.Stream.quarantined > 0 || bres.Batch.quarantined <> [] then
        QCheck.Test.fail_reportf "unexpected quarantine";
      let stream_reports =
        List.rev_map
          (function
            | Stream.Analyzed a -> (a.name, a.report)
            | Stream.Quarantined q ->
              QCheck.Test.fail_reportf "quarantined %s: %s" q.name
                q.error)
          !streamed
      in
      let inmem_reports =
        List.map
          (fun (a : Batch.analyzed) -> (a.Batch.name, a.Batch.report))
          bres.Batch.items
      in
      stream_reports = inmem_reports
      && compare summary.Stream.merged bres.Batch.merged = 0)

(* ------------------------------------------------------------------ *)
(* Crash at item k, resume                                             *)
(* ------------------------------------------------------------------ *)

(* A content-bearing renderer: if resume replayed the wrong thing, the
   emitted bytes differ. *)
let render_digest = function
  | Stream.Analyzed a ->
    let s = a.report.Analyzer.stats in
    Printf.sprintf "%s: %d pairs, %d dependent, %d independent\n"
      a.name s.Analyzer.pairs s.Analyzer.dependent_pairs
      s.Analyzer.independent_pairs
  | Stream.Quarantined q ->
    Printf.sprintf "%s: QUARANTINED %s\n" q.name q.error

let prop_resume_equals_uninterrupted =
  QCheck.Test.make
    ~name:"a run killed at item k and resumed equals an uninterrupted run"
    ~count:15
    (QCheck.make
       ~print:(fun (s, n, k) ->
         Printf.sprintf "(seed=%d, n=%d, kill at %d)" s n k)
       QCheck.Gen.(
         map
           (fun (s, n, kraw) -> (s, n, 1 + (kraw mod n)))
           (triple (int_bound 100_000) (2 -- 5) (int_bound 100))))
    (fun (seed, n, k) ->
      let j_clean = Filename.temp_file "ddstream" ".journal" in
      let j_crash = Filename.temp_file "ddstream" ".journal" in
      Fun.protect
        ~finally:(fun () ->
          Failpoint.clear ();
          Sys.remove j_clean;
          Sys.remove j_crash)
        (fun () ->
          let run ?(resume = false) journal buf =
            Stream.run ~jobs:2 ~journal ~resume ~render:render_digest
              ~emit:(Buffer.add_string buf)
              (Stream.of_fuzz ~profile:Fuzz.Small ~seed n)
          in
          let b_clean = Buffer.create 256 in
          let s_clean = run j_clean b_clean in
          (* The k-th journal append raises, as if the process died
             between completing item k and acknowledging it. *)
          Failpoint.set (Printf.sprintf "stream.journal=raise@%d" k);
          let b_crash = Buffer.create 256 in
          let crashed =
            match run j_crash b_crash with
            | _ -> false
            | exception Failpoint.Injected _ -> true
          in
          Failpoint.clear ();
          if not crashed then
            QCheck.Test.fail_reportf "failpoint did not fire (k=%d)" k;
          (* The journal the crash left behind validates, holds exactly
             the acknowledged items, and resuming from it reproduces
             the clean run exactly. *)
          if Stream.journal_records j_crash <> k - 1 then
            QCheck.Test.fail_reportf "crash journal has %d records, want %d"
              (Stream.journal_records j_crash)
              (k - 1);
          let b_res = Buffer.create 256 in
          let s_res = run ~resume:true j_crash b_res in
          if not (String.equal (Buffer.contents b_res) (Buffer.contents b_clean))
          then
            QCheck.Test.fail_reportf "output differs after resume:\n%s\nvs\n%s"
              (Buffer.contents b_res) (Buffer.contents b_clean);
          s_res.Stream.replayed = k - 1
          && s_res.Stream.total = s_clean.Stream.total
          && compare s_res.Stream.merged s_clean.Stream.merged = 0
          && Stream.journal_records j_crash = n))

(* Torn-tail recovery, exhaustively: a clean journal truncated at every
   byte offset inside its final record must resume to a byte-identical
   run — the intact prefix replays, the torn item re-analyzes. *)
let test_torn_tail_every_offset () =
  let n = 2 in
  let seed = 7 in
  let journal = Filename.temp_file "ddtorn" ".journal" in
  Fun.protect
    ~finally:(fun () -> Sys.remove journal)
    (fun () ->
      let run ?(resume = false) buf =
        Stream.run ~jobs:1 ~journal ~resume ~render:render_digest
          ~emit:(Buffer.add_string buf)
          (Stream.of_fuzz ~profile:Fuzz.Small ~seed n)
      in
      let b_clean = Buffer.create 256 in
      ignore (run b_clean);
      let clean_out = Buffer.contents b_clean in
      let ic = open_in_bin journal in
      let original = really_input_string ic (in_channel_length ic) in
      close_in ic;
      (* The final record spans from one past the second-to-last
         newline to the end of the file. *)
      let total = String.length original in
      let last_start = 1 + String.rindex_from original (total - 2) '\n' in
      for cut = last_start to total - 1 do
        let oc = open_out_bin journal in
        output_string oc (String.sub original 0 cut);
        close_out oc;
        (if cut > last_start then
           (* A nonempty torn tail is visible to validation — as a torn
              tail, not an error — and not counted. *)
           match Stream.journal_records journal with
           | k ->
             if k <> n - 1 then
               Alcotest.failf "cut at %d: %d records, want %d" cut k (n - 1)
           | exception Failure msg ->
             Alcotest.failf "cut at %d: validation refused: %s" cut msg);
        let b_res = Buffer.create 256 in
        let s = run ~resume:true b_res in
        if s.Stream.replayed <> n - 1 then
          Alcotest.failf "cut at %d: replayed %d, want %d" cut
            s.Stream.replayed (n - 1);
        if not (String.equal (Buffer.contents b_res) clean_out) then
          Alcotest.failf "cut at %d: resumed output differs" cut
      done)

(* SIGINT's library half: [stop] ends intake, in-flight work is
   journaled, and the journal resumes to a byte-identical run. *)
let test_stop_leaves_resumable_journal () =
  let n = 6 in
  let seed = 11 in
  let journal = Filename.temp_file "ddstop" ".journal" in
  Fun.protect
    ~finally:(fun () -> Sys.remove journal)
    (fun () ->
      let b_clean = Buffer.create 256 in
      let clean =
        Stream.run ~jobs:1 ~render:render_digest
          ~emit:(Buffer.add_string b_clean)
          (Stream.of_fuzz ~profile:Fuzz.Small ~seed n)
      in
      Alcotest.(check bool) "clean run not interrupted" false
        clean.Stream.interrupted;
      (* Stop after the first emitted item. *)
      let emitted = ref 0 in
      let b_int = Buffer.create 256 in
      let s_int =
        Stream.run ~jobs:1 ~journal ~stop:(fun () -> !emitted >= 1)
          ~render:render_digest
          ~emit:(fun chunk ->
            incr emitted;
            Buffer.add_string b_int chunk)
          (Stream.of_fuzz ~profile:Fuzz.Small ~seed n)
      in
      Alcotest.(check bool) "interrupted" true s_int.Stream.interrupted;
      Alcotest.(check bool) "stopped early" true (s_int.Stream.total < n);
      Alcotest.(check int) "everything emitted was journaled"
        s_int.Stream.total
        (Stream.journal_records journal);
      let b_res = Buffer.create 256 in
      let s_res =
        Stream.run ~jobs:1 ~journal ~resume:true ~render:render_digest
          ~emit:(Buffer.add_string b_res)
          (Stream.of_fuzz ~profile:Fuzz.Small ~seed n)
      in
      Alcotest.(check bool) "resumed run completes" false
        s_res.Stream.interrupted;
      Alcotest.(check int) "resumed from the stop point"
        s_int.Stream.total s_res.Stream.replayed;
      Alcotest.(check string) "resumed output equals uninterrupted"
        (Buffer.contents b_clean) (Buffer.contents b_res))

let test_resume_requires_journal () =
  Alcotest.check_raises "resume without journal"
    (Invalid_argument "Stream.run: resume requires a journal") (fun () ->
      ignore
        (Stream.run ~resume:true ~jobs:1
           ~render:(fun _ -> "")
           ~emit:ignore
           (Stream.of_fuzz ~profile:Fuzz.Small ~seed:1 1)))

let test_config_digest_sensitivity () =
  let d = Stream.config_digest Analyzer.default_config ~verify:false in
  Alcotest.(check bool)
    "verify flag changes the fingerprint" false
    (String.equal d (Stream.config_digest Analyzer.default_config ~verify:true));
  Alcotest.(check bool)
    "config changes the fingerprint" false
    (String.equal d
       (Stream.config_digest
          { Analyzer.default_config with Analyzer.symbolic = false }
          ~verify:false))

let test_perfect_source_names () =
  let rec drain src acc =
    match src () with
    | None -> List.rev acc
    | Some it -> drain src (it.Stream.name :: acc)
  in
  let names = drain (Stream.of_perfect ~amplify:2 ()) [] in
  Alcotest.(check int)
    "13 programs x 2 copies" 26 (List.length names);
  Alcotest.(check bool)
    "amplified names are indexed" true
    (List.mem "perfect:AP:0" names && List.mem "perfect:AP:1" names);
  (* Copy 0 must be the original suite program; copy 1 must differ. *)
  let item name =
    let rec find src =
      match src () with
      | None -> Alcotest.fail ("missing " ^ name)
      | Some it -> if String.equal it.Stream.name name then it else find src
    in
    find (Stream.of_perfect ~amplify:2 ())
  in
  let spec = Option.get (Programs.find "AP") in
  Alcotest.(check bool)
    "copy 0 is the original" true
    (String.equal ((item "perfect:AP:0").Stream.text ()) (Programs.source spec));
  Alcotest.(check bool)
    "copy 1 is fresh material" false
    (String.equal ((item "perfect:AP:1").Stream.text ()) (Programs.source spec))

(* ------------------------------------------------------------------ *)
(* Fuzzer vs the exhaustive oracle                                     *)
(* ------------------------------------------------------------------ *)

(* Satellite smoke test: a couple hundred small-bound fuzzed programs
   through full verification — certificate checking plus the
   brute-force iteration-space oracle. Any disagreement between the
   cascade and ground truth is an error here. *)
let test_fuzz_against_oracle () =
  let failures = ref [] in
  for index = 0 to 199 do
    let text = Fuzz.program Fuzz.Small ~seed:2026 ~index in
    let prog = Parser.parse_program text in
    let s = Dda_check.Verify.run prog in
    if s.Dda_check.Verify.errors > 0 then failures := index :: !failures
  done;
  Alcotest.(check (list int)) "indices with oracle/certificate errors" []
    (List.rev !failures)

let qsuite name tests =
  (name, List.map (QCheck_alcotest.to_alcotest ~long:false) tests)

let () =
  Alcotest.run "streaming"
    [
      qsuite "fuzz"
        [ prop_fuzz_well_formed; prop_fuzz_deterministic ];
      qsuite "stream" [ prop_stream_matches_inmem ];
      qsuite "resume" [ prop_resume_equals_uninterrupted ];
      ( "unit",
        [
          Alcotest.test_case "seed sensitivity" `Quick
            test_fuzz_seed_sensitivity;
          Alcotest.test_case "resume requires a journal" `Quick
            test_resume_requires_journal;
          Alcotest.test_case "torn tail recovers at every byte offset" `Quick
            test_torn_tail_every_offset;
          Alcotest.test_case "stop leaves a resumable journal" `Quick
            test_stop_leaves_resumable_journal;
          Alcotest.test_case "config fingerprint" `Quick
            test_config_digest_sensitivity;
          Alcotest.test_case "perfect source amplification" `Quick
            test_perfect_source_names;
        ] );
      ( "oracle",
        [
          Alcotest.test_case "200 small fuzzed programs vs the oracle" `Slow
            test_fuzz_against_oracle;
        ] );
    ]
