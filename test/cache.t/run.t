Cache administration: ddtest cache compact rewrites a durable memo
store down to one record per key — the duplicates racing domains
append, and any superseded bindings, are dropped — atomically and
with the header fingerprint preserved.

Build a cache by serving a program:

  $ cat > p.dd <<'EOF'
  > for i = 1 to 10 do
  >   a[i] = a[i-1] + 1
  >   b[2*i] = b[2*i+1] + 3
  > end
  > EOF
  $ ddtest serve --socket s.sock --cache memo.cache 2>serve1.log &
  $ SRV=$!
  $ for i in $(seq 1 100); do [ -S s.sock ] && break; sleep 0.1; done
  $ ddtest query --socket s.sock p.dd > first.out
  $ kill -TERM $SRV
  $ wait $SRV

Simulate the duplicate appends racing domains produce: splice a copy
of every record (the file past its 27-byte header) onto the end. The
file doubles; replay keeps one binding per key, so nothing is wrong —
just wasteful:

  $ cp memo.cache memo.orig
  $ tail -c +28 memo.orig >> memo.cache

Compaction halves it back — one record per key, and the result is
byte-for-byte the size of the pre-splice file (same record set):

  $ ddtest cache compact memo.cache | awk '$2 == 2 * $5 { print "halved" }'
  halved
  $ [ $(wc -c < memo.cache) -eq $(wc -c < memo.orig) ] && echo same size
  same size

A daemon restarted on the compacted file is warm and serves
byte-identical answers:

  $ ddtest serve --socket s.sock --cache memo.cache --log-level info 2>serve2.log &
  $ SRV=$!
  $ for i in $(seq 1 100); do [ -S s.sock ] && break; sleep 0.1; done
  $ ddtest query --socket s.sock p.dd > warm.out
  $ kill -TERM $SRV
  $ wait $SRV
  $ cmp first.out warm.out && echo identical
  identical
  $ grep -c 'warm start' serve2.log
  1

The header fingerprint binds the file to the analyzer configuration;
compacting under different flags refuses loudly with the file
untouched (no quarantine — this is an explicit administrative action
on a file the operator believes is valid):

  $ cp memo.cache memo.before
  $ ddtest cache compact memo.cache --memo simple
  ddtest: error: cache memo.cache: fingerprint mismatch (written by a different analyzer version or configuration)
  [1]
  $ cmp memo.cache memo.before && echo untouched
  untouched
  $ [ -f memo.cache.rejected ] || echo no quarantine
  no quarantine

A missing file is a one-line error, exit 1:

  $ ddtest cache compact nope.cache
  ddtest: error: cache nope.cache: cannot read: nope.cache: No such file or directory
  [1]
