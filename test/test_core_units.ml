(* Unit tests for the core's supporting modules: symbolic linear
   expressions, the memo hash table, the Extended GCD reduction's affine
   map, problem construction from sites, and canonicalization. *)

open Dda_numeric
open Dda_lang
open Dda_core

let z = Zint.of_int
let zint = Alcotest.testable Zint.pp Zint.equal
let symexpr = Alcotest.testable Symexpr.pp Symexpr.equal

(* ------------------------------------------------------------------ *)
(* Symexpr                                                             *)
(* ------------------------------------------------------------------ *)

let test_symexpr_algebra () =
  let open Symexpr in
  let e = add (scale (z 2) (var "i")) (of_int 3) in
  Alcotest.check zint "coeff i" (z 2) (coeff e "i");
  Alcotest.check zint "coeff j" Zint.zero (coeff e "j");
  Alcotest.check zint "const" (z 3) (const_part e);
  Alcotest.check symexpr "x - x = 0" zero (sub (var "x") (var "x"));
  Alcotest.check symexpr "assoc"
    (add (var "a") (add (var "b") (of_int 1)))
    (add (add (var "a") (var "b")) (of_int 1));
  Alcotest.(check (list string)) "vars sorted" [ "a"; "b" ]
    (vars (add (var "b") (var "a")));
  Alcotest.(check bool) "is_const" true (is_const (of_int 7));
  Alcotest.(check bool) "not is_const" false (is_const (var "x"))

let test_symexpr_mul_div () =
  let open Symexpr in
  let e = add (scale (z 2) (var "i")) (of_int 4) in
  (match mul (of_int 3) e with
   | Some p ->
     Alcotest.check zint "3*(2i+4) coeff" (z 6) (coeff p "i");
     Alcotest.check zint "3*(2i+4) const" (z 12) (const_part p)
   | None -> Alcotest.fail "const mul should work");
  Alcotest.(check bool) "var*var not affine" true (mul (var "i") (var "j") = None);
  (match div_exact e (z 2) with
   | Some d ->
     Alcotest.check zint "(2i+4)/2 coeff" Zint.one (coeff d "i");
     Alcotest.check zint "(2i+4)/2 const" (z 2) (const_part d)
   | None -> Alcotest.fail "exact div should work");
  Alcotest.(check bool) "(2i+3)/2 inexact" true
    (div_exact (add (scale (z 2) (var "i")) (of_int 3)) (z 2) = None)

let test_symexpr_eval_subst () =
  let open Symexpr in
  let e = add (scale (z 2) (var "i")) (sub (var "j") (of_int 5)) in
  let lookup = function "i" -> z 3 | "j" -> z 10 | _ -> Zint.zero in
  Alcotest.check zint "eval" (z 11) (eval lookup e);
  let e' = subst "i" (add (var "k") (of_int 1)) e in
  Alcotest.check zint "subst coeff k" (z 2) (coeff e' "k");
  Alcotest.check zint "subst const" (z (-3)) (const_part e');
  Alcotest.check zint "subst leaves j" Zint.one (coeff e' "j");
  let r = rename (fun v -> v ^ "!") e in
  Alcotest.check zint "renamed" (z 2) (coeff r "i!");
  Alcotest.(check bool) "rename collision detected" true
    (try ignore (rename (fun _ -> "same") e); false
     with Invalid_argument _ -> true)

let test_symexpr_of_ast () =
  let classify = function "i" | "j" | "n" -> `Var | _ -> `NonAffine in
  let conv src = Symexpr.of_ast ~classify (Parser.parse_expr src) in
  (match conv "2 * i + j - 3" with
   | Some e ->
     Alcotest.check zint "2i" (z 2) (Symexpr.coeff e "i");
     Alcotest.check zint "j" Zint.one (Symexpr.coeff e "j");
     Alcotest.check zint "-3" (z (-3)) (Symexpr.const_part e)
   | None -> Alcotest.fail "affine expr");
  Alcotest.(check bool) "i*j rejected" true (conv "i * j" = None);
  Alcotest.(check bool) "array ref rejected" true (conv "a[i]" = None);
  Alcotest.(check bool) "bad scalar rejected" true (conv "i + q" = None);
  (match conv "(4 * i + 8) / 4" with
   | Some e -> Alcotest.check zint "exact div" Zint.one (Symexpr.coeff e "i")
   | None -> Alcotest.fail "exact div should convert");
  Alcotest.(check bool) "inexact div rejected" true (conv "(4 * i + 3) / 4" = None);
  Alcotest.(check bool) "div by zero rejected" true (conv "i / 0" = None);
  (match conv "-(i - n)" with
   | Some e ->
     Alcotest.check zint "neg distributes" Zint.minus_one (Symexpr.coeff e "i");
     Alcotest.check zint "neg distributes n" Zint.one (Symexpr.coeff e "n")
   | None -> Alcotest.fail "negation")

(* ------------------------------------------------------------------ *)
(* Memo_table                                                          *)
(* ------------------------------------------------------------------ *)

let test_memo_basic () =
  let t = Memo_table.create () in
  Alcotest.(check (option int)) "miss" None (Memo_table.find t [| 1; 2; 3 |]);
  Memo_table.add t [| 1; 2; 3 |] 42;
  Alcotest.(check (option int)) "hit" (Some 42) (Memo_table.find t [| 1; 2; 3 |]);
  Alcotest.(check (option int)) "other key" None (Memo_table.find t [| 3; 2; 1 |]);
  Memo_table.add t [| 1; 2; 3 |] 43;
  Alcotest.(check (option int)) "replaced" (Some 43) (Memo_table.find t [| 1; 2; 3 |]);
  Alcotest.(check int) "one key" 1 (Memo_table.length t)

let test_memo_find_or_add () =
  let t = Memo_table.create () in
  let calls = ref 0 in
  let compute () = incr calls; !calls * 10 in
  let v1, hit1 = Memo_table.find_or_add t [| 7 |] compute in
  let v2, hit2 = Memo_table.find_or_add t [| 7 |] compute in
  Alcotest.(check (pair int bool)) "first" (10, false) (v1, hit1);
  Alcotest.(check (pair int bool)) "second" (10, true) (v2, hit2);
  Alcotest.(check int) "computed once" 1 !calls

let test_memo_growth_and_counters () =
  let t = Memo_table.create ~initial_buckets:2 () in
  for i = 1 to 500 do
    Memo_table.add t [| i; i * 3; -i |] i
  done;
  Alcotest.(check int) "all stored" 500 (Memo_table.length t);
  let ok = ref true in
  for i = 1 to 500 do
    if Memo_table.find t [| i; i * 3; -i |] <> Some i then ok := false
  done;
  Alcotest.(check bool) "all retrievable after rehash" true !ok;
  Alcotest.(check int) "lookups counted" 500 (Memo_table.lookups t);
  Alcotest.(check int) "hits counted" 500 (Memo_table.hits t);
  Memo_table.reset_counters t;
  Alcotest.(check int) "reset" 0 (Memo_table.lookups t)

let test_memo_stats_and_load_factor () =
  let t = Memo_table.create ~initial_buckets:4 () in
  let st0 = Memo_table.stats t in
  Alcotest.(check int) "empty size" 0 st0.Memo_table.size;
  Alcotest.(check int) "initial buckets" 4 st0.Memo_table.buckets;
  let n = (Memo_table.load_factor * 4) + 1 in
  for i = 1 to n do
    Memo_table.add t [| i |] i
  done;
  ignore (Memo_table.find t [| 1 |]);
  ignore (Memo_table.find t [| -1 |]);
  let st = Memo_table.stats t in
  Alcotest.(check int) "size" n st.Memo_table.size;
  (* One entry past load_factor * buckets must have doubled the
     bucket array exactly once. *)
  Alcotest.(check int) "doubled once at the load factor" 8 st.Memo_table.buckets;
  Alcotest.(check int) "lookups" 2 st.Memo_table.lookups;
  Alcotest.(check int) "hits" 1 st.Memo_table.hits

let test_memo_hash_asymmetry () =
  (* The paper chose h(x) = size + sum 2^i x_i so that symmetric
     references do not collide. *)
  Alcotest.(check bool) "swap changes hash" true
    (Memo_table.hash_key [| 1; 2 |] <> Memo_table.hash_key [| 2; 1 |]);
  Alcotest.(check bool) "offset position matters" true
    (Memo_table.hash_key [| 0; 1; 0 |] <> Memo_table.hash_key [| 0; 0; 1 |]);
  Alcotest.(check bool) "size matters" true
    (Memo_table.hash_key [||] <> Memo_table.hash_key [| 0 |])

(* ------------------------------------------------------------------ *)
(* Gcd_test: the affine map x = x0 + C t                               *)
(* ------------------------------------------------------------------ *)

let mk_problem src =
  let prog =
    Parser.parse_program (Pretty.program_to_string (Parser.parse_program src))
  in
  let sites = Affine.extract prog in
  let w = List.find (fun (s : Affine.site) -> s.role = `Write) sites in
  let r = List.find (fun (s : Affine.site) -> s.role = `Read) sites in
  Option.get (Build_problem.build w r)

let test_gcd_map_solves_equalities () =
  let p = mk_problem "for i = 1 to 10 do a[i+1] = a[i] + 3 end" in
  match Gcd_test.run p with
  | Gcd_test.Independent _ -> Alcotest.fail "should reduce"
  | Gcd_test.Reduced red ->
    Alcotest.(check int) "one free parameter" 1 red.nfree;
    (* Every parameter assignment must satisfy the equalities. *)
    List.iter
      (fun tval ->
         let x = Gcd_test.x_of_t red [| z tval |] in
         Alcotest.(check bool)
           (Printf.sprintf "t=%d satisfies equalities" tval)
           true
           (List.for_all
              (fun (r : Consys.row) ->
                 let acc = ref Zint.zero in
                 Array.iteri
                   (fun i c -> acc := Zint.add !acc (Zint.mul c x.(i)))
                   r.coeffs;
                 Zint.equal !acc r.rhs)
              p.eqs))
      [ -5; 0; 1; 17 ];
    (* delta: i - i' = -1 constantly. *)
    (match Gcd_test.delta red (Problem.var1 p 0) (Problem.var2 p 0) with
     | Some d -> Alcotest.check zint "delta -1" (z (-1)) d
     | None -> Alcotest.fail "delta should be constant")

let test_gcd_transform_row_roundtrip () =
  let p = mk_problem "for i = 1 to 10 do a[2*i] = a[2*i+4] + 3 end" in
  match Gcd_test.run p with
  | Gcd_test.Independent _ -> Alcotest.fail "should reduce (offset divisible)"
  | Gcd_test.Reduced red ->
    (* A row over original variables evaluated at x(t) must agree with
       the transformed row evaluated at t (up to the exact integer
       tightening of normalize_row, which preserves satisfaction). *)
    let nv = Problem.nvars p in
    let row = { Consys.coeffs = Array.init nv (fun i -> z (i + 1)); rhs = z 3 } in
    let trow = Gcd_test.transform_row red row in
    List.iter
      (fun tval ->
         let t = [| z tval |] in
         let x = Gcd_test.x_of_t red t in
         let sat_orig = Consys.satisfies x row in
         let sat_t = Consys.satisfies t trow in
         Alcotest.(check bool) (Printf.sprintf "t=%d agree" tval) sat_orig sat_t)
      [ -10; -1; 0; 1; 2; 9 ]

(* ------------------------------------------------------------------ *)
(* Build_problem                                                       *)
(* ------------------------------------------------------------------ *)

let test_build_layout () =
  let p =
    mk_problem
      "read(n)\nfor i = 1 to n do for j = 1 to i do aa[i][j+n] = aa[i][j] + 1 end end"
  in
  Alcotest.(check int) "n1" 2 p.n1;
  Alcotest.(check int) "n2" 2 p.n2;
  Alcotest.(check int) "ncommon" 2 p.ncommon;
  Alcotest.(check int) "one symbol" 1 p.nsym;
  Alcotest.(check int) "two equalities" 2 (List.length p.eqs);
  (* Bounds: i >= 1, i <= n, j >= 1, j <= i for each side = 8 rows. *)
  Alcotest.(check int) "eight bounds" 8 (List.length p.ineqs);
  Alcotest.(check string) "primed name" "i'" p.names.(Problem.var2 p 0);
  (* The j <= i bound's subject is j and mentions i. *)
  let bj =
    List.find
      (fun (b : Problem.bound) ->
         b.subject = Problem.var1 p 1
         && not (Zint.is_zero b.row.Consys.coeffs.(Problem.var1 p 0)))
      p.ineqs
  in
  Alcotest.(check bool) "triangular row exists" true
    (Zint.is_positive bj.row.Consys.coeffs.(Problem.var1 p 1))

let test_build_rejects () =
  let prog = Parser.parse_program "read(q)\nfor i = 1 to 10 do a[i*i] = a[i] + 1 end" in
  let sites = Affine.extract prog in
  let w = List.find (fun (s : Affine.site) -> s.role = `Write) sites in
  let r = List.find (fun (s : Affine.site) -> s.role = `Read) sites in
  Alcotest.(check bool) "non-affine write rejected" true
    (Build_problem.build w r = None)

let test_problem_satisfies_and_keys () =
  let p = mk_problem "for i = 1 to 10 do a[i+1] = a[i] + 3 end" in
  (* i = 1, i' = 2 solves i + 1 = i' within bounds. *)
  Alcotest.(check bool) "solution accepted" true (Problem.satisfies [| z 1; z 2 |] p);
  Alcotest.(check bool) "non-solution rejected" false
    (Problem.satisfies [| z 1; z 3 |] p);
  Alcotest.(check bool) "out of bounds rejected" false
    (Problem.satisfies [| z 10; z 11 |] p);
  let p2 = mk_problem "for i = 1 to 10 do b[i+1] = b[i] + 3 end" in
  Alcotest.(check bool) "keys ignore names" true
    (Problem.to_key p = Problem.to_key p2);
  let p3 = mk_problem "for i = 1 to 10 do a[i+2] = a[i] + 3 end" in
  Alcotest.(check bool) "different offsets differ" true
    (Problem.to_key p <> Problem.to_key p3);
  Alcotest.(check bool) "bounds excluded from gcd key" true
    (Problem.key_without_bounds p
     = Problem.key_without_bounds
         (mk_problem "for i = 1 to 99 do a[i+1] = a[i] + 3 end"))

(* ------------------------------------------------------------------ *)
(* Canonical                                                           *)
(* ------------------------------------------------------------------ *)

let test_canonical_drops_unused () =
  (* The paper's own example: programs (a) and (b) collapse once the
     dead j loop is eliminated. *)
  let pa =
    mk_problem
      "for i = 1 to 10 do for j = 1 to 10 do a[i+10] = a[i] + 3 end end"
  in
  let pb =
    mk_problem
      "for i = 1 to 10 do for j = 1 to 10 do a[j+10] = a[j] + 3 end end"
  in
  let ia = Canonical.reduce pa and ib = Canonical.reduce pb in
  Alcotest.(check bool) "both dropped a level" true (ia.dropped_any && ib.dropped_any);
  Alcotest.(check bool) "same canonical key" true
    (Problem.to_key ia.problem = Problem.to_key ib.problem);
  (* (a) drops level j (index 1), (b) drops level i (index 0). *)
  Alcotest.(check bool) "(a) keeps i" true ia.kept_common.(0);
  Alcotest.(check bool) "(a) drops j" false ia.kept_common.(1);
  Alcotest.(check bool) "(b) drops i" false ib.kept_common.(0);
  Alcotest.(check bool) "(b) keeps j" true ib.kept_common.(1)

let test_canonical_keeps_used () =
  let p =
    mk_problem "for i = 1 to 10 do for j = 1 to i do a[j] = a[j+1] + 1 end end"
  in
  (* i appears in j's bound: not unused. *)
  let info = Canonical.reduce p in
  Alcotest.(check bool) "nothing dropped" false info.dropped_any

let test_canonical_keeps_empty_range () =
  (* A zero-trip unused loop decides the whole problem; it must not be
     dropped. *)
  let p =
    mk_problem "for i = 1 to 10 do for j = 10 to 1 do a[i+10] = a[i] + 3 end end"
  in
  let info = Canonical.reduce p in
  Alcotest.(check bool) "empty-range loop kept" true info.kept_common.(1)

let test_canonical_reinsert () =
  let pa =
    mk_problem
      "for i = 1 to 10 do for j = 1 to 10 do a[i+1] = a[i] + 3 end end"
  in
  let info = Canonical.reduce pa in
  Alcotest.(check bool) "dropped j" true info.dropped_any;
  let v = Canonical.reinsert_vector info [| Direction.Dlt |] in
  Alcotest.(check string) "reinserted" "(<,*)"
    (Format.asprintf "%a" Direction.pp_vector v)

(* ------------------------------------------------------------------ *)
(* Direction refinement: test counts of the hierarchy                  *)
(* ------------------------------------------------------------------ *)

let refine_with prune src =
  let p = mk_problem src in
  match Gcd_test.run p with
  | Gcd_test.Independent _ -> Alcotest.fail "expected a reducible problem"
  | Gcd_test.Reduced red ->
    let counts = Direction.fresh_counts () in
    let r = Direction.refine ~prune ~counts p red in
    let total = Array.fold_left ( + ) 0 counts.Direction.by_test in
    (r, total)

let test_refine_hierarchy_counts () =
  (* Constant-cell pair under two loops: every direction of both levels
     is feasible. Unpruned Burke-Cytron: 1 root + 3 + 3*3 = 13 tests and
     9 concrete vectors. *)
  let src =
    "for i = 1 to 10 do for j = 1 to 10 do a[5] = a[5] + 1 end end"
  in
  let r, total = refine_with Direction.no_pruning src in
  Alcotest.(check bool) "dependent" true r.dependent;
  Alcotest.(check int) "13 tests" 13 total;
  Alcotest.(check int) "9 vectors" 9 (List.length r.vectors);
  (* Unused-variable pruning collapses both levels: one root test, one
     all-star vector. *)
  let r2, total2 = refine_with Direction.full_pruning src in
  Alcotest.(check bool) "still dependent" true r2.dependent;
  Alcotest.(check int) "1 test" 1 total2;
  Alcotest.(check string) "(*,*)" "(*,*)"
    (Format.asprintf "%a" Direction.pp_vector (List.hd r2.vectors))

let test_refine_distance_pruning_counts () =
  (* Constant distances at both levels: the directions are known from
     the GCD map, one root test only. *)
  let src =
    "for i = 1 to 10 do for j = 1 to 9 do aa[i][j] = aa[i][j + 1] + 1 end end"
  in
  let r, total = refine_with Direction.full_pruning src in
  Alcotest.(check int) "1 test" 1 total;
  (* The write's cell (i, j) is read when j' + 1 = j, i.e. j > j'. *)
  Alcotest.(check string) "(=,>)" "(=,>)"
    (Format.asprintf "%a" Direction.pp_vector (List.hd r.vectors));
  (* Without pruning the same answer costs the full hierarchy walk. *)
  let r2, total2 = refine_with Direction.no_pruning src in
  Alcotest.(check string) "same vector" "(=,>)"
    (Format.asprintf "%a" Direction.pp_vector (List.hd r2.vectors));
  Alcotest.(check bool) "more tests" true (total2 > total)

(* ------------------------------------------------------------------ *)
(* Affine extraction details                                           *)
(* ------------------------------------------------------------------ *)

let test_affine_versioning_and_invariance () =
  let prog =
    Parser.parse_program
      "read(n)\nfor i = 1 to n do\n  t = i + 1\n  a[n] = a[t] + 1\nend"
  in
  let sites = Affine.extract prog in
  let w = List.find (fun (s : Affine.site) -> s.role = `Write) sites in
  let r = List.find (fun (s : Affine.site) -> s.role = `Read) sites in
  Alcotest.(check bool) "a[n] affine via symbol" true (Affine.analyzable w);
  (* t is assigned inside the loop: not a valid symbol. *)
  Alcotest.(check bool) "a[t] not affine" false (Affine.analyzable r)

let test_affine_nonunit_step_bounds_unknown () =
  let prog = Parser.parse_program "for i = 1 to 10 step 3 do a[i] = a[i+1] + 1 end" in
  match Affine.extract prog with
  | { Affine.loops = [ ctx ]; _ } :: _ ->
    Alcotest.(check bool) "bounds unknown under non-unit step" true
      (ctx.Affine.lb = None && ctx.Affine.ub = None)
  | _ -> Alcotest.fail "expected one loop"

let test_affine_constant_subscripts () =
  let prog = Parser.parse_program "for i = 1 to 3 do a[5] = a[2+3] + 1 end" in
  let sites = Affine.extract prog in
  List.iter
    (fun (s : Affine.site) ->
       match Affine.constant_subscripts s with
       | Some [ c ] -> Alcotest.check zint "five" (z 5) c
       | _ -> Alcotest.fail "expected constant subscript")
    sites

let () =
  Alcotest.run "core-units"
    [
      ( "symexpr",
        [
          Alcotest.test_case "algebra" `Quick test_symexpr_algebra;
          Alcotest.test_case "mul/div" `Quick test_symexpr_mul_div;
          Alcotest.test_case "eval/subst/rename" `Quick test_symexpr_eval_subst;
          Alcotest.test_case "of_ast" `Quick test_symexpr_of_ast;
        ] );
      ( "memo-table",
        [
          Alcotest.test_case "basic" `Quick test_memo_basic;
          Alcotest.test_case "find_or_add" `Quick test_memo_find_or_add;
          Alcotest.test_case "growth and counters" `Quick test_memo_growth_and_counters;
          Alcotest.test_case "stats and load factor" `Quick
            test_memo_stats_and_load_factor;
          Alcotest.test_case "hash asymmetry" `Quick test_memo_hash_asymmetry;
        ] );
      ( "gcd-reduction",
        [
          Alcotest.test_case "map solves equalities" `Quick test_gcd_map_solves_equalities;
          Alcotest.test_case "transform row round trip" `Quick
            test_gcd_transform_row_roundtrip;
        ] );
      ( "build-problem",
        [
          Alcotest.test_case "layout" `Quick test_build_layout;
          Alcotest.test_case "rejects non-affine" `Quick test_build_rejects;
          Alcotest.test_case "satisfies and keys" `Quick test_problem_satisfies_and_keys;
        ] );
      ( "canonical",
        [
          Alcotest.test_case "drops unused (paper example)" `Quick
            test_canonical_drops_unused;
          Alcotest.test_case "keeps used" `Quick test_canonical_keeps_used;
          Alcotest.test_case "keeps empty range" `Quick test_canonical_keeps_empty_range;
          Alcotest.test_case "reinsert vector" `Quick test_canonical_reinsert;
        ] );
      ( "direction-counts",
        [
          Alcotest.test_case "hierarchy counts" `Quick test_refine_hierarchy_counts;
          Alcotest.test_case "distance pruning counts" `Quick
            test_refine_distance_pruning_counts;
        ] );
      ( "affine",
        [
          Alcotest.test_case "versioning and invariance" `Quick
            test_affine_versioning_and_invariance;
          Alcotest.test_case "non-unit step" `Quick test_affine_nonunit_step_bounds_unknown;
          Alcotest.test_case "constant subscripts" `Quick test_affine_constant_subscripts;
        ] );
    ]
