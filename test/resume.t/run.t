Streaming batch with a write-ahead journal: a run killed mid-corpus
resumes from the journal and reproduces an uninterrupted run byte for
byte; damaged journals are rejected with a diagnostic, never a crash.

  $ cat > p1.dd <<'EOF'
  > for i = 1 to 10 do
  >   a[i] = a[i - 1] + 1
  > end
  > EOF

  $ cat > p2.dd <<'EOF'
  > for i = 1 to 10 do
  >   b[2 * i] = b[2 * i + 1] + 1
  > end
  > EOF

  $ cat > p3.dd <<'EOF'
  > for i = 1 to 8 do
  >   c[i] = c[i] + 2
  > end
  > EOF

  $ cat > p4.dd <<'EOF'
  > for i = 1 to 6 do
  >   d[5] = d[7] + 1
  > end
  > EOF

The uninterrupted reference run, journaled. Streaming output is
byte-identical to the in-memory engine's:

  $ ddtest batch p1.dd p2.dd p3.dd p4.dd > inmem.txt
  $ ddtest batch --stream --journal clean.journal p1.dd p2.dd p3.dd p4.dd > clean.txt
  $ cmp inmem.txt clean.txt && echo identical
  identical
  $ cat clean.txt
  == p1.dd ==
  a[self]  2:3 x 2:3:  independent
  a[pair]  2:3 x 2:10:  dependent directions: (<)[flow] distance: (1)
  == p2.dd ==
  b[self]  2:3 x 2:3:  independent
  b[pair]  2:3 x 2:14:  independent (extended gcd)
  == p3.dd ==
  c[self]  2:3 x 2:3:  independent
  c[pair]  2:3 x 2:10:  dependent directions: (=)[flow] distance: (0)
  == p4.dd ==
  d[self]  2:3 x 2:3:  dependent directions: (<)[output] (>)[output]
  d[pair]  2:3 x 2:10:  independent (constant subscripts)
  
  == corpus: 4 programs ==
  
  -- statistics --
  pairs analyzed:      8
  constant subscripts: 1
  gcd independent:     1
  assumed dependent:   0
  plain tests:         svpc=0 acyclic=0 loop-residue=0 fourier=0
  direction tests:     svpc=6 acyclic=2 loop-residue=1 fourier=0
  memo (gcd table):    7 lookups, 1 hits, 6 unique
  memo (full table):   7 lookups, 0 hits, 7 unique
  verdicts:            5 independent, 3 dependent

The journal holds one header line and one record per item:

  $ grep -c '' clean.journal
  5
  $ grep -o '"name":"[^"]*"' clean.journal
  "name":"p1.dd"
  "name":"p2.dd"
  "name":"p3.dd"
  "name":"p4.dd"

Kill the run while it journals the third item: the two acknowledged
items are on disk, the third is not, and the process reports the
injected crash with exit 1.

  $ DDA_FAILPOINTS='stream.journal=raise@3' ddtest batch --stream --journal crash.journal p1.dd p2.dd p3.dd p4.dd > crash.txt
  ddtest: error: failpoint "stream.journal" injected
  [1]
  $ grep -c '' crash.journal
  3
  $ grep -o '"name":"[^"]*"' crash.journal
  "name":"p1.dd"
  "name":"p2.dd"

Resume: the journaled items replay byte-for-byte, analysis restarts at
the third item, and the completed output and journal match the
uninterrupted run exactly.

  $ ddtest batch --stream --journal crash.journal --resume p1.dd p2.dd p3.dd p4.dd > resumed.txt
  $ cmp clean.txt resumed.txt && echo identical
  identical
  $ cmp clean.journal crash.journal && echo identical
  identical

The same equivalence holds for JSON output:

  $ ddtest batch --stream --journal cj.journal --format json p1.dd p2.dd p3.dd p4.dd > clean.json
  $ DDA_FAILPOINTS='stream.journal=raise@2' ddtest batch --stream --journal rj.journal --format json p1.dd p2.dd p3.dd p4.dd > /dev/null
  ddtest: error: failpoint "stream.journal" injected
  [1]
  $ ddtest batch --stream --journal rj.journal --resume --format json p1.dd p2.dd p3.dd p4.dd > resumed.json
  $ cmp clean.json resumed.json && echo identical
  identical

A torn final record — the exact shape a kill -9 mid-append leaves,
since record lines escape their newlines — is recovered, not rejected:
the torn tail is dropped with a warning, the intact prefix replays,
and the run completes identically to an uninterrupted one. Here the
cut lands 43 bytes into record 0, so everything re-analyzes:

  $ head -c 120 clean.journal > torn.journal
  $ ddtest batch --stream --journal torn.journal --resume p1.dd p2.dd p3.dd p4.dd > torn_resumed.txt
  warning: journal torn.journal: dropping a torn final record (43 byte(s)); 0 intact record(s) kept
  $ cmp clean.txt torn_resumed.txt && echo identical
  identical
  $ cmp clean.journal torn.journal && echo identical
  identical

A cut inside the *last* record keeps every intact record in front of
it — only the torn item re-analyzes:

  $ LEN=$(grep -c '' clean.journal)
  $ head -n $((LEN - 1)) clean.journal > torn3.journal
  $ tail -n 1 clean.journal | head -c 25 >> torn3.journal
  $ ddtest batch --stream --journal torn3.journal --resume p1.dd p2.dd p3.dd p4.dd > torn3_resumed.txt
  warning: journal torn3.journal: dropping a torn final record (25 byte(s)); 3 intact record(s) kept
  $ cmp clean.txt torn3_resumed.txt && echo identical
  identical

Mid-file corruption is a different thing entirely and still refuses —
here a complete record whose output no longer matches its digest:

  $ sed '2s/"digest":"./"digest":"0/' clean.journal > bad.journal
  $ cmp -s clean.journal bad.journal; echo $?
  1
  $ ddtest batch --stream --journal bad.journal --resume p1.dd p2.dd p3.dd p4.dd
  ddtest: error: journal bad.journal: record 0 fails its digest check
  [1]

And one that is not a journal at all:

  $ echo 'hello world' > not.journal
  $ ddtest batch --stream --journal not.journal --resume p1.dd p2.dd p3.dd p4.dd
  ddtest: error: journal not.journal: bad header: expected a JSON value at offset 0
  [1]

A journal written under a different configuration cannot be resumed —
the stored outputs would not match what this run computes:

  $ ddtest batch --stream --journal clean.journal --resume --memo off p1.dd p2.dd p3.dd p4.dd
  ddtest: error: journal clean.journal: written under a different configuration; re-run without --resume
  [1]

Nor can it replay a corpus that changed underneath it:

  $ ddtest batch --stream --journal clean.journal --resume p2.dd p1.dd p3.dd p4.dd
  ddtest: error: journal clean.journal: record 0 is for "p1.dd" but the corpus has "p2.dd" here
  [1]

Resume without a journal is a usage error:

  $ ddtest batch --stream --resume p1.dd
  ddtest: error: Stream.run: resume requires a journal
  [1]

A malformed corpus item quarantines (exit 3) instead of aborting the
stream, and the quarantine is journaled and replayed like any result:

  $ echo 'for i = 1 to' > broken.dd
  $ ddtest batch --stream --journal q.journal p1.dd broken.dd p4.dd > q.txt
  [3]
  $ grep broken q.txt
  == broken.dd ==
  QUARANTINED after 1 attempt: broken.dd:2:1: syntax error: expected an expression (found '<eof>')
  $ ddtest batch --stream --journal q.journal --resume p1.dd broken.dd p4.dd > q2.txt
  [3]
  $ cmp q.txt q2.txt && echo identical
  identical
