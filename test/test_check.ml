(* The verification layer: the trusted certificate checker accepts
   everything the cascade produces, rejects corrupted evidence, and the
   cascade agrees with the exhaustive enumeration oracle. *)

open Dda_numeric
open Dda_core
open Dda_check
open Test_support

let z = Zint.of_int

let row coeffs rhs = Consys.row_of_ints coeffs rhs

(* ------------------------------------------------------------------ *)
(* Properties over random boxed systems                                *)
(* ------------------------------------------------------------------ *)

let prop_witness_checked =
  QCheck.Test.make ~name:"every dependent witness passes the trusted checker"
    ~count:800 Gen_sys.arb_boxed
    (fun boxed ->
       match (Cascade.run boxed.Gen_sys.sys).Cascade.verdict with
       | Cascade.Dependent w -> (
           match Certcheck.check_witness w boxed.Gen_sys.sys with
           | Ok () -> true
           | Error e -> QCheck.Test.fail_reportf "witness rejected: %s" e)
       | Cascade.Independent _ -> true
       | Cascade.Unknown | Cascade.Exhausted _ ->
         QCheck.Test.fail_reportf "unexpected inexact verdict")

let prop_certificate_checked =
  QCheck.Test.make
    ~name:"every independence certificate passes the trusted checker"
    ~count:800 Gen_sys.arb_boxed
    (fun boxed ->
       let sys = boxed.Gen_sys.sys in
       match (Cascade.run sys).Cascade.verdict with
       | Cascade.Independent cert -> (
           match
             Certcheck.check_infeasible ~nvars:sys.Consys.nvars sys.Consys.rows
               cert
           with
           | Ok () -> true
           | Error e -> QCheck.Test.fail_reportf "certificate rejected: %s" e)
       | Cascade.Dependent _ -> true
       | Cascade.Unknown | Cascade.Exhausted _ ->
         QCheck.Test.fail_reportf "unexpected inexact verdict")

let prop_certificate_checked_tighten =
  QCheck.Test.make
    ~name:"certificates from the tightened cascade pass the checker too"
    ~count:400 Gen_sys.arb_boxed
    (fun boxed ->
       let sys = boxed.Gen_sys.sys in
       match (Cascade.run ~fm_tighten:true sys).Cascade.verdict with
       | Cascade.Independent cert -> (
           match
             Certcheck.check_infeasible ~nvars:sys.Consys.nvars sys.Consys.rows
               cert
           with
           | Ok () -> true
           | Error e -> QCheck.Test.fail_reportf "certificate rejected: %s" e)
       | Cascade.Dependent _ | Cascade.Unknown | Cascade.Exhausted _ -> true)

let prop_cascade_vs_oracle =
  QCheck.Test.make
    ~name:"cascade verdicts agree with the exhaustive oracle" ~count:800
    Gen_sys.arb_boxed
    (fun boxed ->
       let sys = boxed.Gen_sys.sys in
       match (Oracle.exhaustive sys, (Cascade.run sys).Cascade.verdict) with
       | Oracle.Out_of_scope, _ ->
         QCheck.Test.fail_reportf "generated system out of oracle scope"
       | Oracle.Feasible _, Cascade.Independent _ ->
         QCheck.Test.fail_reportf "cascade: independent, oracle: feasible"
       | Oracle.Infeasible, Cascade.Dependent _ ->
         QCheck.Test.fail_reportf "cascade: dependent, oracle: infeasible"
       | _, _ -> true)

let prop_oracle_vs_brute =
  QCheck.Test.make ~name:"the oracle agrees with Gen_sys's brute force"
    ~count:500 Gen_sys.arb_boxed
    (fun boxed ->
       let truth = Gen_sys.brute_feasible boxed in
       match Oracle.exhaustive boxed.Gen_sys.sys with
       | Oracle.Feasible w ->
         truth && Consys.satisfies_all w boxed.Gen_sys.sys
       | Oracle.Infeasible -> not truth
       | Oracle.Out_of_scope ->
         QCheck.Test.fail_reportf "generated system out of oracle scope")

(* Extended GCD refutations: random equality-only problems. *)
let arb_eqs =
  QCheck.make
    ~print:(fun (nvars, eqs) ->
      Format.asprintf "%a" (Consys.pp ?names:None)
        (Consys.make ~nvars eqs))
    QCheck.Gen.(
      int_range 1 4 >>= fun nvars ->
      int_range 1 3 >>= fun m ->
      list_repeat m
        (list_repeat nvars (int_range (-4) 4) >>= fun coeffs ->
         int_range (-9) 9 >>= fun rhs ->
         return (row coeffs rhs))
      >>= fun eqs -> return (nvars, eqs))

let prop_gcd_refutation_checked =
  QCheck.Test.make
    ~name:"every extended-gcd refutation passes the trusted checker"
    ~count:800 arb_eqs
    (fun (nvars, eqs) ->
       let names = Array.init nvars (fun i -> Printf.sprintf "t%d" i) in
       let p =
         Problem.make ~names ~n1:nvars ~n2:0 ~nsym:0 ~ncommon:0 ~eqs ~ineqs:[]
       in
       match Gcd_test.run_eqs p with
       | Gcd_test.Independent cert -> (
           match Certcheck.check_eq_refutation cert ~nvars eqs with
           | Ok () -> true
           | Error e -> QCheck.Test.fail_reportf "refutation rejected: %s" e)
       | Gcd_test.Reduced _ -> true)

(* ------------------------------------------------------------------ *)
(* The checker rejects corrupted evidence                              *)
(* ------------------------------------------------------------------ *)

let infeasible_sys =
  (* x <= -1 and x >= 0: no integer point. *)
  Consys.make ~nvars:1 [ row [ 1 ] (-1); row [ -1 ] 0 ]

let test_rejects_bad_certificate () =
  let cert =
    match (Cascade.run infeasible_sys).Cascade.verdict with
    | Cascade.Independent c -> c
    | _ -> Alcotest.fail "expected independent"
  in
  (match
     Certcheck.check_infeasible ~nvars:1 infeasible_sys.Consys.rows cert
   with
   | Ok () -> ()
   | Error e -> Alcotest.failf "genuine certificate rejected: %s" e);
  (match
     Certcheck.check_infeasible ~nvars:1 infeasible_sys.Consys.rows
       (Cert.Refute (Cert.Hyp (-1)))
   with
   | Ok () -> Alcotest.fail "out-of-range hypothesis accepted"
   | Error _ -> ());
  (* A combination that does not cancel the variable is no refutation. *)
  match
    Certcheck.check_infeasible ~nvars:1 infeasible_sys.Consys.rows
      (Cert.Refute (Cert.Hyp 0))
  with
  | Ok () -> Alcotest.fail "non-contradictory derivation accepted"
  | Error _ -> ()

let test_rejects_bad_witness () =
  let sys = Consys.make ~nvars:2 [ row [ 1; 0 ] 5; row [ -1; -1 ] (-3) ] in
  (match Certcheck.check_witness [| z 2; z 4 |] sys with
   | Ok () -> ()
   | Error e -> Alcotest.failf "good witness rejected: %s" e);
  (match Certcheck.check_witness [| z 2 |] sys with
   | Ok () -> Alcotest.fail "short witness accepted"
   | Error _ -> ());
  match Certcheck.check_witness [| z 6; z 0 |] sys with
  | Ok () -> Alcotest.fail "violating witness accepted"
  | Error _ -> ()

let test_rejects_bad_refutation () =
  let eqs = [ row [ 2 ] 1 ] in
  let p =
    Problem.make ~names:[| "t0" |] ~n1:1 ~n2:0 ~nsym:0 ~ncommon:0 ~eqs
      ~ineqs:[]
  in
  let cert =
    match Gcd_test.run_eqs p with
    | Gcd_test.Independent c -> c
    | Gcd_test.Reduced _ -> Alcotest.fail "2x = 1 should be gcd-independent"
  in
  (match Certcheck.check_eq_refutation cert ~nvars:1 eqs with
   | Ok () -> ()
   | Error e -> Alcotest.failf "genuine refutation rejected: %s" e);
  match
    Certcheck.check_eq_refutation
      { cert with Cert.modulus = Zint.one }
      ~nvars:1 eqs
  with
  | Ok () -> Alcotest.fail "modulus 1 accepted"
  | Error _ -> ()

let test_split_semantics () =
  (* 2x <= 1 and -2x <= -1 has the rational point 1/2 but no integer
     point; without tightening the refutation needs an integer split. *)
  let sys = Consys.make ~nvars:1 [ row [ 2 ] 1; row [ -2 ] (-1) ] in
  let cert =
    Cert.Split
      {
        var = 0;
        bound = Zint.zero;
        (* x <= 0: doubling the cut and adding -2x <= -1 gives 0 <= -1. *)
        left = Cert.Refute (Cert.Comb [ (Zint.two, Cert.Cut 0); (Zint.one, Cert.Hyp 1) ]);
        (* x >= 1, i.e. -x <= -1: doubled plus 2x <= 1 gives 0 <= -1. *)
        right = Cert.Refute (Cert.Comb [ (Zint.two, Cert.Cut 0); (Zint.one, Cert.Hyp 0) ]);
      }
  in
  (match Certcheck.check_infeasible ~nvars:1 sys.Consys.rows cert with
   | Ok () -> ()
   | Error e -> Alcotest.failf "hand-built split certificate rejected: %s" e);
  (* Referencing a cut that is not on the path must fail. *)
  match
    Certcheck.check_infeasible ~nvars:1 sys.Consys.rows
      (Cert.Refute (Cert.Cut 0))
  with
  | Ok () -> Alcotest.fail "cut reference outside any split accepted"
  | Error _ -> ()

let test_oracle_corners () =
  (* Constant contradiction. *)
  (match Oracle.exhaustive (Consys.make ~nvars:1 [ row [ 0 ] (-2); row [ 1 ] 3; row [ -1 ] 0 ]) with
   | Oracle.Infeasible -> ()
   | _ -> Alcotest.fail "constant contradiction not detected");
  (* Unbounded variable. *)
  (match Oracle.exhaustive (Consys.make ~nvars:1 [ row [ 1 ] 3 ]) with
   | Oracle.Out_of_scope -> ()
   | _ -> Alcotest.fail "unbounded system should be out of scope");
  (* Empty box. *)
  match Oracle.exhaustive (Consys.make ~nvars:1 [ row [ 1 ] (-1); row [ -1 ] 0 ]) with
  | Oracle.Infeasible -> ()
  | _ -> Alcotest.fail "empty box should be infeasible"

(* ------------------------------------------------------------------ *)
(* End-to-end verification summaries                                   *)
(* ------------------------------------------------------------------ *)

let parse src = Dda_lang.Parser.parse_program src

let clean_prog =
  parse
    "for i = 1 to 10 do\n\
    \  a[i] = a[i + 10] + 3\n\
     end\n\
     for i = 1 to 10 do\n\
    \  b[i + 1] = b[i] + 3\n\
     end\n"

let test_verify_clean () =
  let s = Verify.run clean_prog in
  Alcotest.(check int) "no errors" 0 s.Verify.errors;
  Alcotest.(check int) "no warnings" 0 s.Verify.warnings;
  Alcotest.(check bool) "certificates were checked" true
    (s.Verify.certificates > 0)

let test_verify_corrupt () =
  let s = Verify.run ~corrupt:true clean_prog in
  Alcotest.(check bool) "corruption is caught" true (s.Verify.errors > 0);
  List.iter
    (fun (d : Verify.diagnostic) ->
       match d.Verify.severity with
       | Verify.Sev_error -> ()
       | Verify.Sev_warning -> Alcotest.fail "unexpected warning")
    s.Verify.diagnostics

let test_verify_non_affine () =
  let s =
    Verify.run (parse "for i = 1 to 10 do\n  a[i * i] = a[i] + 1\nend\n")
  in
  Alcotest.(check int) "no errors" 0 s.Verify.errors;
  Alcotest.(check bool) "non-affine warning" true
    (List.exists
       (fun (d : Verify.diagnostic) -> String.equal d.Verify.code "non-affine")
       s.Verify.diagnostics)

let test_verify_self_pair () =
  (* A self dependence (distinct iterations write a[2i] and a[i+3]):
     the obligations must find and certify the differing witness. *)
  let s = Verify.run (parse "for i = 1 to 9 do\n  a[2 * i] = a[i] + 1\nend\n") in
  Alcotest.(check int) "no errors" 0 s.Verify.errors

let qsuite name tests = (name, List.map (QCheck_alcotest.to_alcotest ~long:false) tests)

let () =
  Alcotest.run "check"
    [
      qsuite "properties"
        [
          prop_witness_checked;
          prop_certificate_checked;
          prop_certificate_checked_tighten;
          prop_cascade_vs_oracle;
          prop_oracle_vs_brute;
          prop_gcd_refutation_checked;
        ];
      ( "checker",
        [
          Alcotest.test_case "rejects bad certificates" `Quick
            test_rejects_bad_certificate;
          Alcotest.test_case "rejects bad witnesses" `Quick
            test_rejects_bad_witness;
          Alcotest.test_case "rejects bad refutations" `Quick
            test_rejects_bad_refutation;
          Alcotest.test_case "split and cut semantics" `Quick
            test_split_semantics;
          Alcotest.test_case "oracle corners" `Quick test_oracle_corners;
        ] );
      ( "verify",
        [
          Alcotest.test_case "clean program" `Quick test_verify_clean;
          Alcotest.test_case "corrupt mode is caught" `Quick
            test_verify_corrupt;
          Alcotest.test_case "non-affine warning" `Quick
            test_verify_non_affine;
          Alcotest.test_case "self pair witnesses" `Quick
            test_verify_self_pair;
        ] );
    ]
