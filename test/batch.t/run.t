The batch subcommand: a whole corpus in one run, on a pool of domains.

  $ cat > first.dd <<'EOF'
  > for i = 1 to 10 do
  >   a[i] = a[i + 10] + 3
  > end
  > for i = 1 to 10 do
  >   b[i + 1] = b[i] + 3
  > end
  > EOF

  $ cat > second.dd <<'EOF'
  > for i = 1 to 10 do
  >   a[i + 1] = a[i] + 3
  >   a[i] = 0
  > end
  > EOF

  $ cat > third.dd <<'EOF'
  > for i = 1 to 16 do
  >   for j = 1 to 16 do
  >     c[i][j] = c[i - 1][j + 1] + 1
  >   end
  > end
  > EOF

Per-program reports come back in input order, with merged corpus
statistics after them:

  $ ddtest batch first.dd second.dd third.dd --jobs 2
  == first.dd ==
  a[self]  2:3 x 2:3:  independent
  a[pair]  2:3 x 2:10:  independent
  b[self]  5:3 x 5:3:  independent
  b[pair]  5:3 x 5:14:  dependent directions: (<)[flow] distance: (1)
  == second.dd ==
  a[self]  2:3 x 2:3:  independent
  a[pair]  2:3 x 2:14:  dependent directions: (<)[flow] distance: (1)
  a[pair]  2:3 x 3:3:  dependent directions: (<)[output] distance: (1)
  a[pair]  2:14 x 3:3:  dependent directions: (=)[anti] distance: (0)
  a[self]  3:3 x 3:3:  independent
  == third.dd ==
  c[self]  3:5 x 3:5:  independent
  c[pair]  3:5 x 3:15:  dependent directions: (<,>)[flow] distance: (1,-1)
  
  == corpus: 3 programs ==
  
  -- statistics --
  pairs analyzed:      11
  constant subscripts: 0
  gcd independent:     0
  assumed dependent:   0
  plain tests:         svpc=0 acyclic=0 loop-residue=0 fourier=0
  direction tests:     svpc=8 acyclic=0 loop-residue=0 fourier=0
  memo (gcd table):    8 lookups, 1 hits, 7 unique
  memo (full table):   11 lookups, 3 hits, 8 unique
  verdicts:            6 independent, 5 dependent



The defining property: whatever --jobs is, the output is byte-identical
(each program is analyzed independently, chunks are a pure function of
the corpus, and results are reassembled in input order):

  $ ddtest batch first.dd second.dd third.dd --jobs 1 > j1.out
  $ ddtest batch first.dd second.dd third.dd --jobs 2 > j2.out
  $ ddtest batch first.dd second.dd third.dd --jobs 4 > j4.out
  $ cmp j1.out j2.out && cmp j1.out j4.out

Same for JSON:

  $ ddtest batch first.dd second.dd third.dd --jobs 1 --format json > j1.json
  $ ddtest batch first.dd second.dd third.dd --jobs 2 --format json > j2.json
  $ cmp j1.json j2.json

  $ ddtest batch first.dd second.dd --format json | tr -d ' \n' | head -c 100
  {"programs":[{"file":"first.dd","report":{"pairs":[{"array":"a","ref1":{"loc":"2:3","role":"write"},

With --share-memo every worker queries one live lock-striped table
pair during the run; verdicts are identical, and the table sizes are
the corpus's distinct-problem counts (the two copies of the same
program below add none). At --jobs 1 the hit counters are
deterministic too — the second copy hits on every full-table lookup,
so the gcd table (consulted only on full misses) sees no new traffic:

  $ ddtest batch second.dd second.dd --share-memo --jobs 1 | tail -n 3
  verdicts:            4 independent, 6 dependent
  table (gcd):  2 entries in 2048 buckets, 1/3 hits (33.3%)
  table (full):  3 entries in 2048 buckets, 7/10 hits (70.0%)

At --jobs 2 the hit split depends on cross-domain timing, but verdicts
and table sizes never do:

  $ ddtest batch second.dd second.dd --share-memo --jobs 2 | grep -c 'dependent directions'
  6
  $ ddtest batch second.dd second.dd --share-memo --jobs 2 | grep -oE 'table \(full\):  [0-9]+ entries'
  table (full):  3 entries

--memo-merge-after selects the pre-live oracle mode instead: each
domain fills a private session and the tables are merged after the
run, so hit counters are deterministic for a fixed --jobs (here each
copy recomputes on its own domain — the cross-domain repeat the live
mode would have caught):

  $ ddtest batch second.dd second.dd --share-memo --memo-merge-after --jobs 2 | tail -n 3
  verdicts:            4 independent, 6 dependent
  table (gcd):  2 entries in 64 buckets, 2/6 hits (33.3%)
  table (full):  3 entries in 64 buckets, 4/10 hits (40.0%)

  $ ddtest batch second.dd --share-memo | tail -n 3
  verdicts:            2 independent, 3 dependent
  table (gcd):  2 entries in 2048 buckets, 1/3 hits (33.3%)
  table (full):  3 entries in 2048 buckets, 2/5 hits (40.0%)

Errors still carry positions, for any file of the corpus:

  $ printf 'for i = 1 to do a[i] = 1 end' > bad.dd
  $ ddtest batch first.dd bad.dd
  bad.dd:1:14: syntax error: expected an expression (found 'do')
  [1]
