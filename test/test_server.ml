(* The analysis daemon, exercised in-process: the server runs in a
   spawned domain on a temp-dir socket while the test plays client over
   plain [Unix] sockets. Covers the protocol (ping/status/analyze),
   determinism of repeated answers, bad-request and poisoned-request
   quarantine (the server survives), bounded-queue load shedding, and
   graceful drain. *)

open Dda_core
open Dda_server

let config = Analyzer.default_config

let temp_dir () =
  let d = Filename.temp_file "ddserve" "" in
  Sys.remove d;
  Unix.mkdir d 0o700;
  d

let rec rm_rf p =
  if Sys.is_directory p then begin
    Array.iter (fun f -> rm_rf (Filename.concat p f)) (Sys.readdir p);
    Unix.rmdir p
  end
  else Sys.remove p

(* Start a server, run [f client_connect server], then drain and
   join. [admin] binds the HTTP admin plane on an ephemeral port;
   [access_log] names a JSONL file inside the temp dir. *)
let with_server ?(jobs = 2) ?(queue_limit = 64) ?cache_name ?(admin = false)
    ?access_log f =
  let dir = temp_dir () in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let socket = Filename.concat dir "s.sock" in
      let cfg =
        {
          (Server.default_config config) with
          Server.socket_path = socket;
          jobs;
          queue_limit;
          cache_path = Option.map (Filename.concat dir) cache_name;
          admin_port = (if admin then Some 0 else None);
          access_log = Option.map (Filename.concat dir) access_log;
        }
      in
      let server, _ = Server.create cfg in
      let d = Domain.spawn (fun () -> Server.run server) in
      (* Wait for the socket to appear. *)
      let rec wait n =
        if Sys.file_exists socket then ()
        else if n = 0 then Alcotest.fail "server socket never appeared"
        else begin
          Unix.sleepf 0.02;
          wait (n - 1)
        end
      in
      wait 250;
      let connect () =
        let fd = Unix.socket PF_UNIX SOCK_STREAM 0 in
        Unix.connect fd (ADDR_UNIX socket);
        (fd, Unix.in_channel_of_descr fd, Unix.out_channel_of_descr fd)
      in
      Fun.protect
        ~finally:(fun () ->
          Server.drain server;
          Domain.join d)
        (fun () -> f connect server))

(* The admin plane binds after the Unix socket, so poll briefly. *)
let admin_port server =
  let rec wait n =
    match Server.admin_port server with
    | Some p -> p
    | None ->
      if n = 0 then Alcotest.fail "admin port never appeared"
      else begin
        Unix.sleepf 0.02;
        wait (n - 1)
      end
  in
  wait 250

(* A one-shot HTTP GET, small enough to not deserve a dependency. *)
let http_get port path =
  let fd = Unix.socket PF_INET SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect fd (ADDR_INET (Unix.inet_addr_loopback, port));
      let req =
        Printf.sprintf "GET %s HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n"
          path
      in
      let b = Bytes.of_string req in
      ignore (Unix.write fd b 0 (Bytes.length b));
      let buf = Buffer.create 4096 in
      let chunk = Bytes.create 65536 in
      let rec slurp () =
        match Unix.read fd chunk 0 (Bytes.length chunk) with
        | 0 -> ()
        | n ->
          Buffer.add_subbytes buf chunk 0 n;
          slurp ()
      in
      slurp ();
      let raw = Buffer.contents buf in
      let code =
        match String.split_on_char ' ' raw with
        | _ :: c :: _ -> int_of_string c
        | _ -> Alcotest.failf "no status line in %S" raw
      in
      let body =
        let rec find i =
          if i + 3 >= String.length raw then String.length raw
          else if
            raw.[i] = '\r' && raw.[i + 1] = '\n' && raw.[i + 2] = '\r'
            && raw.[i + 3] = '\n'
          then i + 4
          else find (i + 1)
        in
        let s = find 0 in
        String.sub raw s (String.length raw - s)
      in
      (code, body))

let send oc line =
  output_string oc line;
  output_char oc '\n';
  flush oc

let rpc (_, ic, oc) line =
  send oc line;
  input_line ic

let json_field line key =
  match Json_out.of_string line with
  | Ok j -> Json_out.member key j
  | Error msg -> Alcotest.failf "unparseable response %S: %s" line msg

let is_ok line = json_field line "ok" = Some (Json_out.Bool true)

let program = "for i = 1 to 20 do\n  a[i] = a[i-1] + 1\nend\n"

let analyze_req ?(id = 1) ?(stats = false) src =
  Json_out.to_string
    (Json_out.Obj
       ([
          ("op", Json_out.Str "analyze");
          ("id", Json_out.Int id);
          ("program", Json_out.Str src);
        ]
        @ if stats then [ ("stats", Json_out.Bool true) ] else []))

let test_ping_status () =
  with_server (fun connect _server ->
      let c = connect () in
      let pong = rpc c {|{"op":"ping"}|} in
      Alcotest.(check bool) "pong ok" true (is_ok pong);
      Alcotest.(check bool) "pong field" true
        (json_field pong "pong" = Some (Json_out.Bool true));
      let status = rpc c {|{"op":"status"}|} in
      Alcotest.(check bool) "status ok" true (is_ok status);
      match json_field status "server" with
      | Some (Json_out.Obj _) -> ()
      | _ -> Alcotest.fail "status has no server object")

let test_analyze_deterministic () =
  with_server (fun connect _server ->
      let c = connect () in
      let r1 = rpc c (analyze_req program) in
      let r2 = rpc c (analyze_req program) in
      Alcotest.(check bool) "ok" true (is_ok r1);
      (* First answer computes, second hits the memo cache — the bytes
         must not know the difference. *)
      Alcotest.(check string) "cold equals warm" r1 r2;
      (* A second connection gets the same bytes too. *)
      let c2 = connect () in
      let r3 = rpc c2 (analyze_req program) in
      Alcotest.(check string) "across connections" r1 r3;
      (* But stats are opt-in and present when asked. *)
      let r4 = rpc c (analyze_req ~stats:true program) in
      Alcotest.(check bool) "stats present" true
        (match json_field r4 "stats" with Some (Json_out.Obj _) -> true | _ -> false);
      Alcotest.(check bool) "no stats by default" true
        (json_field r1 "stats" = None))

let test_bad_requests_quarantined () =
  with_server (fun connect _server ->
      let c = connect () in
      let r = rpc c "this is not json" in
      Alcotest.(check bool) "parse error refused" true
        (json_field r "ok" = Some (Json_out.Bool false));
      let r = rpc c {|{"op":"frobnicate"}|} in
      Alcotest.(check bool) "unknown op refused" true
        (json_field r "ok" = Some (Json_out.Bool false));
      let r = rpc c {|{"op":"analyze","id":7}|} in
      Alcotest.(check bool) "missing program refused" true
        (json_field r "ok" = Some (Json_out.Bool false));
      Alcotest.(check bool) "id echoed" true
        (json_field r "id" = Some (Json_out.Int 7));
      let r = rpc c (analyze_req "for i = oops") in
      Alcotest.(check bool) "syntax error reported" true
        (json_field r "ok" = Some (Json_out.Bool false));
      (* After all that abuse, the server still answers. *)
      let r = rpc c (analyze_req program) in
      Alcotest.(check bool) "still serving" true (is_ok r))

let test_poisoned_request_keeps_serving () =
  with_server ~jobs:1 (fun connect _server ->
      Fun.protect ~finally:Failpoint.clear (fun () ->
          Failpoint.set "serve.request=raise@1";
          let c = connect () in
          let r = rpc c (analyze_req program) in
          Alcotest.(check bool) "poisoned request errors" true
            (json_field r "ok" = Some (Json_out.Bool false));
          Alcotest.(check bool) "marked quarantined" true
            (json_field r "quarantined" = Some (Json_out.Bool true));
          (* The worker that died of it is still alive. *)
          let r2 = rpc c (analyze_req program) in
          Alcotest.(check bool) "worker survived" true (is_ok r2)))

let test_load_shedding () =
  with_server ~jobs:1 ~queue_limit:1 (fun connect _server ->
      Fun.protect ~finally:Failpoint.clear (fun () ->
          (* Park the single worker on the first request for a while. *)
          Failpoint.set "serve.request=delay:500@1";
          let c1 = connect () in
          send (let _, _, oc = c1 in oc) (analyze_req ~id:1 program);
          (* Give the accept loop time to enqueue request 1. *)
          Unix.sleepf 0.15;
          let c2 = connect () in
          let r = rpc c2 (analyze_req ~id:2 program) in
          Alcotest.(check bool) "second request shed" true
            (json_field r "shed" = Some (Json_out.Bool true));
          Alcotest.(check bool) "shed is explicit, not ok" true
            (json_field r "ok" = Some (Json_out.Bool false));
          (* The parked request still completes. *)
          let _, ic, _ = c1 in
          Alcotest.(check bool) "first request completes" true
            (is_ok (input_line ic))))

let test_drain_is_graceful () =
  (* with_server drains in its teardown; this test checks the socket
     actually disappears and a second cycle works (resources freed). *)
  let dir = temp_dir () in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let socket = Filename.concat dir "s.sock" in
      let cfg = { (Server.default_config config) with Server.socket_path = socket } in
      let cycle () =
        let server, _ = Server.create cfg in
        let d = Domain.spawn (fun () -> Server.run server) in
        let rec wait n =
          if (not (Sys.file_exists socket)) && n > 0 then begin
            Unix.sleepf 0.02;
            wait (n - 1)
          end
        in
        wait 250;
        let fd = Unix.socket PF_UNIX SOCK_STREAM 0 in
        Unix.connect fd (ADDR_UNIX socket);
        let ic = Unix.in_channel_of_descr fd in
        let oc = Unix.out_channel_of_descr fd in
        send oc (analyze_req program);
        let r = input_line ic in
        Unix.close fd;
        Server.drain server;
        Domain.join d;
        Alcotest.(check bool) "served before drain" true (is_ok r);
        Alcotest.(check bool) "socket unlinked" false (Sys.file_exists socket)
      in
      cycle ();
      cycle ())

let test_warm_cache_across_restarts () =
  (* Two servers sharing one cache file, run one after the other: the
     second must answer from the replayed cache with identical bytes. *)
  let dir = temp_dir () in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let socket = Filename.concat dir "s.sock" in
      let cache = Filename.concat dir "memo.cache" in
      let cfg =
        {
          (Server.default_config config) with
          Server.socket_path = socket;
          cache_path = Some cache;
        }
      in
      let once () =
        let server, recovery = Server.create cfg in
        let d = Domain.spawn (fun () -> Server.run server) in
        let rec wait n =
          if (not (Sys.file_exists socket)) && n > 0 then begin
            Unix.sleepf 0.02;
            wait (n - 1)
          end
        in
        wait 250;
        let fd = Unix.socket PF_UNIX SOCK_STREAM 0 in
        Unix.connect fd (ADDR_UNIX socket);
        let ic = Unix.in_channel_of_descr fd in
        let oc = Unix.out_channel_of_descr fd in
        send oc (analyze_req program);
        let r = input_line ic in
        Unix.close fd;
        Server.drain server;
        Domain.join d;
        (r, recovery)
      in
      let cold, rec1 = once () in
      let warm, rec2 = once () in
      Alcotest.(check bool) "first start is fresh" true
        (Option.get rec1).Dda_cache.Store.fresh;
      let r2 = Option.get rec2 in
      Alcotest.(check bool) "second start replays" true
        (r2.Dda_cache.Store.records > 0);
      Alcotest.(check int) "no damage" 0 r2.Dda_cache.Store.dropped_bytes;
      Alcotest.(check string) "warm restart byte-identical" cold warm)

(* ------------------------------------------------------------------ *)
(* Telemetry plane                                                     *)
(* ------------------------------------------------------------------ *)

let test_admin_endpoints () =
  with_server ~admin:true (fun connect server ->
      let port = admin_port server in
      let c = connect () in
      Alcotest.(check bool) "analyze ok" true (is_ok (rpc c (analyze_req program)));
      let code, body = http_get port "/healthz" in
      Alcotest.(check int) "healthz 200" 200 code;
      Alcotest.(check string) "healthz body" "ok\n" body;
      let code, body = http_get port "/readyz" in
      Alcotest.(check int) "readyz 200" 200 code;
      Alcotest.(check string) "readyz body" "ready\n" body;
      let code, body = http_get port "/metrics" in
      Alcotest.(check int) "metrics 200" 200 code;
      (match Dda_obs.Expo.parse body with
       | Error msg -> Alcotest.failf "metrics not parseable: %s" msg
       | Ok p ->
         let counter name = List.assoc_opt name p.Dda_obs.Expo.p_counters in
         Alcotest.(check bool) "requests counted" true
           (match counter "dda_serve_requests" with
            | Some n -> n >= 1
            | None -> false);
         Alcotest.(check bool) "memo counters exposed" true
           (counter "dda_memo_lookups" <> None);
         Alcotest.(check bool) "per-op latency histogram" true
           (match
              List.assoc_opt "dda_serve_op_analyze_ns"
                p.Dda_obs.Expo.p_histograms
            with
            | Some h -> h.Dda_obs.Expo.p_count >= 1
            | None -> false);
         Alcotest.(check bool) "uptime gauge" true
           (List.assoc_opt "dda_serve_uptime_ns" p.Dda_obs.Expo.p_gauges
            <> None));
      let code, body = http_get port "/status" in
      Alcotest.(check int) "status 200" 200 code;
      (match Json_out.of_string (String.trim body) with
       | Error msg -> Alcotest.failf "status not JSON: %s" msg
       | Ok j -> (
           match Json_out.member "server" j with
           | Some (Json_out.Obj fields) ->
             Alcotest.(check bool) "uptime_ns in status" true
               (List.mem_assoc "uptime_ns" fields);
             Alcotest.(check bool) "peak_rss_kb in status" true
               (List.mem_assoc "peak_rss_kb" fields)
           | _ -> Alcotest.fail "no server object in /status"));
      let code, body = http_get port "/tracez" in
      Alcotest.(check int) "tracez 200" 200 code;
      Alcotest.(check bool) "tracez is a chrome trace" true
        (String.starts_with ~prefix:"{\"traceEvents\":" body);
      let code, _ = http_get port "/no-such-endpoint" in
      Alcotest.(check int) "unknown path is 404" 404 code)

let test_admin_never_load_bearing () =
  with_server ~admin:true (fun connect server ->
      let port = admin_port server in
      (* Abuse the admin plane: wrong method, garbage bytes, a peer
         that connects and leaves. None of it may affect queries. *)
      let code, _ = http_get port "/metrics" in
      Alcotest.(check int) "sane before abuse" 200 code;
      let raw req =
        let fd = Unix.socket PF_INET SOCK_STREAM 0 in
        Unix.connect fd (ADDR_INET (Unix.inet_addr_loopback, port));
        let b = Bytes.of_string req in
        ignore (Unix.write fd b 0 (Bytes.length b));
        Unix.close fd
      in
      raw "POST /metrics HTTP/1.1\r\n\r\n";
      raw "complete garbage\r\n\r\n";
      raw "";  (* connect-and-leave *)
      let c = connect () in
      Alcotest.(check bool) "queries survive admin abuse" true
        (is_ok (rpc c (analyze_req program)));
      let code, _ = http_get port "/metrics" in
      Alcotest.(check int) "admin plane survives too" 200 code)

let test_explain_block () =
  with_server (fun connect _server ->
      let c = connect () in
      let req =
        Json_out.to_string
          (Json_out.Obj
             [
               ("op", Json_out.Str "analyze");
               ("id", Json_out.Int 1);
               ("program", Json_out.Str program);
               ("explain", Json_out.Bool true);
             ])
      in
      let r = rpc c req in
      Alcotest.(check bool) "ok" true (is_ok r);
      (match json_field r "explain" with
       | Some (Json_out.Obj fields) ->
         (* The flow-dependent loop exercises at least the GCD stage;
            every stage key is present either way. *)
         (match List.assoc_opt "stages" fields with
          | Some (Json_out.Obj stages) ->
            List.iter
              (fun s ->
                 Alcotest.(check bool) ("stage " ^ s) true
                   (List.mem_assoc s stages))
              [ "gcd"; "svpc"; "acyclic"; "loop_residue"; "fourier" ];
            (match List.assoc_opt "gcd" stages with
             | Some (Json_out.Obj g) -> (
                 match List.assoc_opt "calls" g with
                 | Some (Json_out.Int n) ->
                   Alcotest.(check bool) "gcd ran" true (n > 0)
                 | _ -> Alcotest.fail "gcd has no calls field")
             | _ -> Alcotest.fail "no gcd stage object")
          | _ -> Alcotest.fail "no stages object");
         Alcotest.(check bool) "memo block" true (List.mem_assoc "memo" fields);
         Alcotest.(check bool) "budget steps" true
           (match List.assoc_opt "budget_steps" fields with
            | Some (Json_out.Int n) -> n > 0
            | _ -> false);
         Alcotest.(check bool) "degraded flag" true
           (List.assoc_opt "degraded" fields = Some (Json_out.Bool false))
       | _ -> Alcotest.fail "no explain block when asked");
      (* Opt-in: the default response carries no explain block (its
         timings vary run to run; default bytes must not). *)
      let plain = rpc c (analyze_req program) in
      Alcotest.(check bool) "absent by default" true
        (json_field plain "explain" = None))

let test_access_log_one_line_per_request () =
  let dir = temp_dir () in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let socket = Filename.concat dir "s.sock" in
      let log = Filename.concat dir "access.jsonl" in
      let cfg =
        {
          (Server.default_config config) with
          Server.socket_path = socket;
          access_log = Some log;
        }
      in
      let server, _ = Server.create cfg in
      let d = Domain.spawn (fun () -> Server.run server) in
      let rec wait n =
        if (not (Sys.file_exists socket)) && n > 0 then begin
          Unix.sleepf 0.02;
          wait (n - 1)
        end
      in
      wait 250;
      let fd = Unix.socket PF_UNIX SOCK_STREAM 0 in
      Unix.connect fd (ADDR_UNIX socket);
      let ic = Unix.in_channel_of_descr fd in
      let oc = Unix.out_channel_of_descr fd in
      let requests =
        [
          {|{"op":"ping"}|};
          analyze_req program;
          "this is not json";
          {|{"op":"status"}|};
        ]
      in
      List.iter
        (fun r ->
          send oc r;
          ignore (input_line ic))
        requests;
      Unix.close fd;
      (* Drain before reading: every response precedes its log line by
         a hair, and the drain barrier orders all of them. *)
      Server.drain server;
      Domain.join d;
      let lines = ref [] in
      let icl = open_in log in
      (try
         while true do
           lines := input_line icl :: !lines
         done
       with End_of_file -> close_in icl);
      let lines = List.rev !lines in
      Alcotest.(check int) "one line per request" (List.length requests)
        (List.length lines);
      let ops =
        List.map
          (fun l ->
            match json_field l "op" with
            | Some (Json_out.Str op) -> op
            | _ -> Alcotest.failf "access line without op: %s" l)
          lines
      in
      Alcotest.(check (list string)) "ops in order"
        [ "ping"; "analyze"; "invalid"; "status" ]
        ops;
      (* Request ids are unique and increasing; the analyze line
         carries its telemetry. *)
      let ids =
        List.map
          (fun l ->
            match json_field l "req" with
            | Some (Json_out.Int i) -> i
            | _ -> Alcotest.failf "access line without req id: %s" l)
          lines
      in
      Alcotest.(check (list int)) "ids are sequential" [ 1; 2; 3; 4 ] ids;
      let analyze_line = List.nth lines 1 in
      Alcotest.(check bool) "latency recorded" true
        (match json_field analyze_line "ns" with
         | Some (Json_out.Int ns) -> ns >= 0
         | _ -> false);
      List.iter
        (fun key ->
          Alcotest.(check bool) (key ^ " present") true
            (json_field analyze_line key <> None))
        [ "degraded"; "memo_hits"; "memo_lookups"; "budget_steps" ])

let () =
  Alcotest.run "server"
    [
      ( "protocol",
        [
          Alcotest.test_case "ping and status" `Quick test_ping_status;
          Alcotest.test_case "analyze is deterministic" `Quick
            test_analyze_deterministic;
          Alcotest.test_case "bad requests answered, not fatal" `Quick
            test_bad_requests_quarantined;
        ] );
      ( "robustness",
        [
          Alcotest.test_case "poisoned request is quarantined" `Quick
            test_poisoned_request_keeps_serving;
          Alcotest.test_case "saturated queue sheds explicitly" `Quick
            test_load_shedding;
          Alcotest.test_case "drain is graceful and repeatable" `Quick
            test_drain_is_graceful;
          Alcotest.test_case "warm cache across restarts" `Quick
            test_warm_cache_across_restarts;
        ] );
      ( "telemetry",
        [
          Alcotest.test_case "admin endpoints" `Quick test_admin_endpoints;
          Alcotest.test_case "admin plane is never load-bearing" `Quick
            test_admin_never_load_bearing;
          Alcotest.test_case "explain attributes stages" `Quick
            test_explain_block;
          Alcotest.test_case "access log: one line per request" `Quick
            test_access_log_one_line_per_request;
        ] );
    ]
