(* The analysis daemon, exercised in-process: the server runs in a
   spawned domain on a temp-dir socket while the test plays client over
   plain [Unix] sockets. Covers the protocol (ping/status/analyze),
   determinism of repeated answers, bad-request and poisoned-request
   quarantine (the server survives), bounded-queue load shedding, and
   graceful drain. *)

open Dda_core
open Dda_server

let config = Analyzer.default_config

let temp_dir () =
  let d = Filename.temp_file "ddserve" "" in
  Sys.remove d;
  Unix.mkdir d 0o700;
  d

let rec rm_rf p =
  if Sys.is_directory p then begin
    Array.iter (fun f -> rm_rf (Filename.concat p f)) (Sys.readdir p);
    Unix.rmdir p
  end
  else Sys.remove p

(* Start a server, run [f client_connect], then drain and join. *)
let with_server ?(jobs = 2) ?(queue_limit = 64) ?cache_name f =
  let dir = temp_dir () in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let socket = Filename.concat dir "s.sock" in
      let cfg =
        {
          (Server.default_config config) with
          Server.socket_path = socket;
          jobs;
          queue_limit;
          cache_path = Option.map (Filename.concat dir) cache_name;
        }
      in
      let server, _ = Server.create cfg in
      let d = Domain.spawn (fun () -> Server.run server) in
      (* Wait for the socket to appear. *)
      let rec wait n =
        if Sys.file_exists socket then ()
        else if n = 0 then Alcotest.fail "server socket never appeared"
        else begin
          Unix.sleepf 0.02;
          wait (n - 1)
        end
      in
      wait 250;
      let connect () =
        let fd = Unix.socket PF_UNIX SOCK_STREAM 0 in
        Unix.connect fd (ADDR_UNIX socket);
        (fd, Unix.in_channel_of_descr fd, Unix.out_channel_of_descr fd)
      in
      Fun.protect
        ~finally:(fun () ->
          Server.drain server;
          Domain.join d)
        (fun () -> f connect))

let send oc line =
  output_string oc line;
  output_char oc '\n';
  flush oc

let rpc (_, ic, oc) line =
  send oc line;
  input_line ic

let json_field line key =
  match Json_out.of_string line with
  | Ok j -> Json_out.member key j
  | Error msg -> Alcotest.failf "unparseable response %S: %s" line msg

let is_ok line = json_field line "ok" = Some (Json_out.Bool true)

let program = "for i = 1 to 20 do\n  a[i] = a[i-1] + 1\nend\n"

let analyze_req ?(id = 1) ?(stats = false) src =
  Json_out.to_string
    (Json_out.Obj
       ([
          ("op", Json_out.Str "analyze");
          ("id", Json_out.Int id);
          ("program", Json_out.Str src);
        ]
        @ if stats then [ ("stats", Json_out.Bool true) ] else []))

let test_ping_status () =
  with_server (fun connect ->
      let c = connect () in
      let pong = rpc c {|{"op":"ping"}|} in
      Alcotest.(check bool) "pong ok" true (is_ok pong);
      Alcotest.(check bool) "pong field" true
        (json_field pong "pong" = Some (Json_out.Bool true));
      let status = rpc c {|{"op":"status"}|} in
      Alcotest.(check bool) "status ok" true (is_ok status);
      match json_field status "server" with
      | Some (Json_out.Obj _) -> ()
      | _ -> Alcotest.fail "status has no server object")

let test_analyze_deterministic () =
  with_server (fun connect ->
      let c = connect () in
      let r1 = rpc c (analyze_req program) in
      let r2 = rpc c (analyze_req program) in
      Alcotest.(check bool) "ok" true (is_ok r1);
      (* First answer computes, second hits the memo cache — the bytes
         must not know the difference. *)
      Alcotest.(check string) "cold equals warm" r1 r2;
      (* A second connection gets the same bytes too. *)
      let c2 = connect () in
      let r3 = rpc c2 (analyze_req program) in
      Alcotest.(check string) "across connections" r1 r3;
      (* But stats are opt-in and present when asked. *)
      let r4 = rpc c (analyze_req ~stats:true program) in
      Alcotest.(check bool) "stats present" true
        (match json_field r4 "stats" with Some (Json_out.Obj _) -> true | _ -> false);
      Alcotest.(check bool) "no stats by default" true
        (json_field r1 "stats" = None))

let test_bad_requests_quarantined () =
  with_server (fun connect ->
      let c = connect () in
      let r = rpc c "this is not json" in
      Alcotest.(check bool) "parse error refused" true
        (json_field r "ok" = Some (Json_out.Bool false));
      let r = rpc c {|{"op":"frobnicate"}|} in
      Alcotest.(check bool) "unknown op refused" true
        (json_field r "ok" = Some (Json_out.Bool false));
      let r = rpc c {|{"op":"analyze","id":7}|} in
      Alcotest.(check bool) "missing program refused" true
        (json_field r "ok" = Some (Json_out.Bool false));
      Alcotest.(check bool) "id echoed" true
        (json_field r "id" = Some (Json_out.Int 7));
      let r = rpc c (analyze_req "for i = oops") in
      Alcotest.(check bool) "syntax error reported" true
        (json_field r "ok" = Some (Json_out.Bool false));
      (* After all that abuse, the server still answers. *)
      let r = rpc c (analyze_req program) in
      Alcotest.(check bool) "still serving" true (is_ok r))

let test_poisoned_request_keeps_serving () =
  with_server ~jobs:1 (fun connect ->
      Fun.protect ~finally:Failpoint.clear (fun () ->
          Failpoint.set "serve.request=raise@1";
          let c = connect () in
          let r = rpc c (analyze_req program) in
          Alcotest.(check bool) "poisoned request errors" true
            (json_field r "ok" = Some (Json_out.Bool false));
          Alcotest.(check bool) "marked quarantined" true
            (json_field r "quarantined" = Some (Json_out.Bool true));
          (* The worker that died of it is still alive. *)
          let r2 = rpc c (analyze_req program) in
          Alcotest.(check bool) "worker survived" true (is_ok r2)))

let test_load_shedding () =
  with_server ~jobs:1 ~queue_limit:1 (fun connect ->
      Fun.protect ~finally:Failpoint.clear (fun () ->
          (* Park the single worker on the first request for a while. *)
          Failpoint.set "serve.request=delay:500@1";
          let c1 = connect () in
          send (let _, _, oc = c1 in oc) (analyze_req ~id:1 program);
          (* Give the accept loop time to enqueue request 1. *)
          Unix.sleepf 0.15;
          let c2 = connect () in
          let r = rpc c2 (analyze_req ~id:2 program) in
          Alcotest.(check bool) "second request shed" true
            (json_field r "shed" = Some (Json_out.Bool true));
          Alcotest.(check bool) "shed is explicit, not ok" true
            (json_field r "ok" = Some (Json_out.Bool false));
          (* The parked request still completes. *)
          let _, ic, _ = c1 in
          Alcotest.(check bool) "first request completes" true
            (is_ok (input_line ic))))

let test_drain_is_graceful () =
  (* with_server drains in its teardown; this test checks the socket
     actually disappears and a second cycle works (resources freed). *)
  let dir = temp_dir () in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let socket = Filename.concat dir "s.sock" in
      let cfg = { (Server.default_config config) with Server.socket_path = socket } in
      let cycle () =
        let server, _ = Server.create cfg in
        let d = Domain.spawn (fun () -> Server.run server) in
        let rec wait n =
          if (not (Sys.file_exists socket)) && n > 0 then begin
            Unix.sleepf 0.02;
            wait (n - 1)
          end
        in
        wait 250;
        let fd = Unix.socket PF_UNIX SOCK_STREAM 0 in
        Unix.connect fd (ADDR_UNIX socket);
        let ic = Unix.in_channel_of_descr fd in
        let oc = Unix.out_channel_of_descr fd in
        send oc (analyze_req program);
        let r = input_line ic in
        Unix.close fd;
        Server.drain server;
        Domain.join d;
        Alcotest.(check bool) "served before drain" true (is_ok r);
        Alcotest.(check bool) "socket unlinked" false (Sys.file_exists socket)
      in
      cycle ();
      cycle ())

let test_warm_cache_across_restarts () =
  (* Two servers sharing one cache file, run one after the other: the
     second must answer from the replayed cache with identical bytes. *)
  let dir = temp_dir () in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let socket = Filename.concat dir "s.sock" in
      let cache = Filename.concat dir "memo.cache" in
      let cfg =
        {
          (Server.default_config config) with
          Server.socket_path = socket;
          cache_path = Some cache;
        }
      in
      let once () =
        let server, recovery = Server.create cfg in
        let d = Domain.spawn (fun () -> Server.run server) in
        let rec wait n =
          if (not (Sys.file_exists socket)) && n > 0 then begin
            Unix.sleepf 0.02;
            wait (n - 1)
          end
        in
        wait 250;
        let fd = Unix.socket PF_UNIX SOCK_STREAM 0 in
        Unix.connect fd (ADDR_UNIX socket);
        let ic = Unix.in_channel_of_descr fd in
        let oc = Unix.out_channel_of_descr fd in
        send oc (analyze_req program);
        let r = input_line ic in
        Unix.close fd;
        Server.drain server;
        Domain.join d;
        (r, recovery)
      in
      let cold, rec1 = once () in
      let warm, rec2 = once () in
      Alcotest.(check bool) "first start is fresh" true
        (Option.get rec1).Dda_cache.Store.fresh;
      let r2 = Option.get rec2 in
      Alcotest.(check bool) "second start replays" true
        (r2.Dda_cache.Store.records > 0);
      Alcotest.(check int) "no damage" 0 r2.Dda_cache.Store.dropped_bytes;
      Alcotest.(check string) "warm restart byte-identical" cold warm)

let () =
  Alcotest.run "server"
    [
      ( "protocol",
        [
          Alcotest.test_case "ping and status" `Quick test_ping_status;
          Alcotest.test_case "analyze is deterministic" `Quick
            test_analyze_deterministic;
          Alcotest.test_case "bad requests answered, not fatal" `Quick
            test_bad_requests_quarantined;
        ] );
      ( "robustness",
        [
          Alcotest.test_case "poisoned request is quarantined" `Quick
            test_poisoned_request_keeps_serving;
          Alcotest.test_case "saturated queue sheds explicitly" `Quick
            test_load_shedding;
          Alcotest.test_case "drain is graceful and repeatable" `Quick
            test_drain_is_graceful;
          Alcotest.test_case "warm cache across restarts" `Quick
            test_warm_cache_across_restarts;
        ] );
    ]
