The paper-table report: deterministic measured counts beside the
paper's published totals. The same text is committed at
doc/paper_tables.expected, which CI diffs against a fresh run.

  $ ddtest report
  ddtest report: the paper's evaluation tables on the synthetic PERFECT Club
  (counts are deterministic; the paper column is the published total)
  
  -- stage decisions (paper Table 1) --
  prog     constant     gcd    svpc  acyclic  loop-res  fourier
  AP             58      22     154        0         0        0
  CS             12       0      32        4         0        0
  LG           1740       0      18        0         0        0
  LW             14       0       8        9         0        1
  MT             12       0      82        0         0        0
  NA             12       0     170       44         2        8
  OC              2       2      10        0         0        0
  SD            238       0     132        2         2        6
  SM            252      24      66        0         0        0
  SR            420       0     322        0         0        0
  TF            200       2     206        0         0        0
  TI              0       0       2        9         0        1
  WS             10      46      94        2         0       40
  TOTAL        2970      96    1296       70         4       56
  paper       11859     384    5176      323         6      174
  
  -- memoization (paper Table 3) --
                                measured     paper
  executed tests, no memo           1426      5679
  executed tests, memoized           277       332
  reduction                         5.1x     17.1x
  
  -- direction-vector pruning (paper Tables 4 -> 5) --
                                measured     paper
  tests, no pruning                 3681     12500
  tests, full pruning               1812       900
  reduction                         2.0x     13.9x

The JSON form carries the same numbers for tooling:

  $ ddtest report --format json | grep -A1 '"memoization"' | head -n 2
    "memoization": {"executed_no_memo": 1426,
                     "executed_memoized": 277,
