(* Integration tests on the curated kernel library: the analyzer must
   classify every loop of every classic kernel exactly as the textbook
   says — no false serialization (lost parallelism) and no false
   parallelism (miscompilation). Run under several configurations,
   since all of them claim exactness. *)

open Dda_lang
open Dda_core
open Dda_perfect

let configs =
  [
    ("default", Analyzer.default_config);
    ( "no pruning, simple memo",
      {
        Analyzer.default_config with
        Analyzer.prune = Direction.no_pruning;
        memo = Analyzer.Memo_simple;
      } );
    ( "separable, symmetric memo",
      {
        Analyzer.default_config with
        Analyzer.prune = Direction.separable_pruning;
        memo = Analyzer.Memo_symmetric;
      } );
    ( "fm tightening",
      { Analyzer.default_config with Analyzer.fm_tighten = true } );
  ]

(* Map loop ids back to variable names in first-occurrence order. *)
let loop_names sites = Affine.loop_table sites

let classify config (k : Kernels.kernel) =
  let prog = Dda_passes.Pipeline.run (Parser.parse_program k.source) in
  let sites = Affine.extract ~symbolic:config.Analyzer.symbolic prog in
  let report =
    Analyzer.analyze ~config:{ config with Analyzer.run_pipeline = false } prog
  in
  let names = loop_names sites in
  List.map
    (fun (lid, parallel) ->
       (Option.value (List.assoc_opt lid names) ~default:"?", parallel))
    (Analyzer.parallel_loops report sites)

let check_kernel config_name config (k : Kernels.kernel) () =
  let result = classify config k in
  List.iter
    (fun v ->
       match List.assoc_opt v result with
       | Some p ->
         Alcotest.(check bool)
           (Printf.sprintf "[%s] %s: loop %s parallel" config_name k.name v)
           true p
       | None -> Alcotest.failf "loop %s not found in %s" v k.name)
    k.parallel_loops;
  List.iter
    (fun v ->
       match List.assoc_opt v result with
       | Some p ->
         Alcotest.(check bool)
           (Printf.sprintf "[%s] %s: loop %s serial" config_name k.name v)
           false p
       | None -> Alcotest.failf "loop %s not found in %s" v k.name)
    k.serial_loops;
  Alcotest.(check int)
    (Printf.sprintf "[%s] %s: all loops accounted for" config_name k.name)
    (List.length result)
    (List.length k.parallel_loops + List.length k.serial_loops)

(* The linter's headline contract: its DOALL set is exactly the
   textbook parallel set, kernel by kernel. Reduction and vectorizable
   verdicts are refinements of "not DOALL", so they must land on the
   serial side — lost parallelism and false parallelism both fail. *)
let check_lint_doall config_name config (k : Kernels.kernel) () =
  let prog = Parser.parse_program k.source in
  let res = Dda_analysis.Lint.run ~config prog in
  let names = loop_names res.Dda_analysis.Lint.sites in
  let doall =
    List.filter_map
      (fun (lid, is_doall) ->
         if is_doall then
           Some (Option.value (List.assoc_opt lid names) ~default:"?")
         else None)
      (Dda_analysis.Summary.doall_loops res.Dda_analysis.Lint.summary)
    |> List.sort String.compare
  in
  Alcotest.(check (list string))
    (Printf.sprintf "[%s] %s: lint DOALL set = textbook parallel set"
       config_name k.name)
    (List.sort String.compare k.parallel_loops)
    doall;
  (* Nothing on exact kernels is degraded, so no verdict leans on
     conservative evidence. *)
  List.iter
    (fun (li : Dda_analysis.Summary.loop_info) ->
       if li.verdict = Dda_analysis.Summary.Doall then
         Alcotest.(check bool)
           (Printf.sprintf "[%s] %s: DOALL loop %s not degraded" config_name
              k.name li.var)
           false li.degraded)
    res.Dda_analysis.Lint.summary.Dda_analysis.Summary.loops

let test_kernel_sources_wellformed () =
  List.iter
    (fun (k : Kernels.kernel) ->
       match Parser.parse_program k.source with
       | prog ->
         Alcotest.(check int)
           (k.name ^ " semantically clean")
           0
           (List.length (Semant.check prog))
       | exception Parser.Error (msg, loc) ->
         Alcotest.failf "%s: parse error %s at %s" k.name msg (Loc.to_string loc))
    Kernels.all

let test_find () =
  Alcotest.(check bool) "find hits" true (Kernels.find "matmul" <> None);
  Alcotest.(check bool) "find misses" true (Kernels.find "nope" = None)

(* The kernels also serve as oracle fodder: their traces must agree
   with the analyzer (bounded variants to keep traces small). *)
let test_kernels_against_oracle () =
  let shrink src =
    (* Shrink all constant loop bounds to at most 8 so the interpreter
       trace stays tiny. *)
    let prog = Parser.parse_program src in
    let rec shrink_expr (e : Ast.expr) =
      match e.desc with
      | Ast.Int n when n > 8 -> { e with desc = Ast.Int 8 }
      | Ast.Int _ | Ast.Var _ -> e
      | Ast.Neg a -> { e with desc = Ast.Neg (shrink_expr a) }
      | Ast.Bin (op, a, b) -> { e with desc = Ast.Bin (op, shrink_expr a, shrink_expr b) }
      | Ast.Aref (n, subs) -> { e with desc = Ast.Aref (n, List.map shrink_expr subs) }
    in
    let rec shrink_stmt (s : Ast.stmt) =
      match s.sdesc with
      | Ast.For f ->
        {
          s with
          sdesc =
            Ast.For
              {
                f with
                lo = shrink_expr f.lo;
                hi = shrink_expr f.hi;
                body = List.map shrink_stmt f.body;
              };
        }
      | _ -> s
    in
    List.map shrink_stmt prog
  in
  let exact =
    {
      Analyzer.default_config with
      Analyzer.prune = Direction.no_pruning;
      memo = Analyzer.Memo_simple;
      run_pipeline = false;
    }
  in
  List.iter
    (fun (k : Kernels.kernel) ->
       if k.name <> "nonlinear" then begin
         let prog = shrink k.source in
         let report = Analyzer.analyze ~config:exact prog in
         (* Symbolic bounds read as 6 so the loops actually run. *)
         let inputs = [ ("n", 6) ] in
         List.iter
           (fun (r : Analyzer.pair_report) ->
              let obs = Trace.observe ~inputs prog ~site1:r.loc1 ~site2:r.loc2 in
              match r.outcome with
              | Analyzer.Tested t ->
                Alcotest.(check bool)
                  (Printf.sprintf "%s: %s/%s verdict matches trace" k.name
                     (Loc.to_string r.loc1) (Loc.to_string r.loc2))
                  obs.dependent t.dependent
              | Analyzer.Constant d ->
                Alcotest.(check bool) (k.name ^ ": constant matches") obs.dependent d
              | Analyzer.Gcd_independent ->
                Alcotest.(check bool) (k.name ^ ": gcd indep matches") false
                  obs.dependent
              | Analyzer.Assumed_dependent -> ())
           report.pair_reports
       end)
    Kernels.all

let () =
  let kernel_cases =
    List.concat_map
      (fun (cname, config) ->
         List.map
           (fun (k : Kernels.kernel) ->
              Alcotest.test_case
                (Printf.sprintf "%s [%s]" k.name cname)
                `Quick
                (check_kernel cname config k))
           Kernels.all)
      configs
  in
  let lint_cases =
    List.concat_map
      (fun (cname, config) ->
         List.map
           (fun (k : Kernels.kernel) ->
              Alcotest.test_case
                (Printf.sprintf "%s [%s]" k.name cname)
                `Quick
                (check_lint_doall cname config k))
           Kernels.all)
      configs
  in
  Alcotest.run "kernels"
    [
      ( "library",
        [
          Alcotest.test_case "well-formed" `Quick test_kernel_sources_wellformed;
          Alcotest.test_case "find" `Quick test_find;
        ] );
      ("classification", kernel_cases);
      ("lint doall", lint_cases);
      ( "oracle",
        [ Alcotest.test_case "verdicts match traces" `Quick test_kernels_against_oracle ] );
    ]
