(* Unit and property tests for the numeric substrate: Zint agrees with
   native int arithmetic on small values, division invariants hold on
   large values, and Qnum is a field with correct floor/ceil. *)

open Dda_numeric

let zint = Alcotest.testable Zint.pp Zint.equal
let qnum = Alcotest.testable Qnum.pp Qnum.equal

let z = Zint.of_int
let q = Qnum.of_ints

(* ------------------------------------------------------------------ *)
(* Zint unit tests                                                     *)
(* ------------------------------------------------------------------ *)

let test_zint_basics () =
  Alcotest.check zint "0 + 0" Zint.zero (Zint.add Zint.zero Zint.zero);
  Alcotest.check zint "1 + -1" Zint.zero (Zint.add Zint.one Zint.minus_one);
  Alcotest.check zint "2 * 3" (z 6) (Zint.mul (z 2) (z 3));
  Alcotest.check zint "neg" (z (-5)) (Zint.neg (z 5));
  Alcotest.check zint "abs" (z 5) (Zint.abs (z (-5)));
  Alcotest.(check int) "sign neg" (-1) (Zint.sign (z (-7)));
  Alcotest.(check int) "sign zero" 0 (Zint.sign Zint.zero);
  Alcotest.(check bool) "is_one" true (Zint.is_one Zint.one);
  Alcotest.(check bool) "is_one of -1" false (Zint.is_one Zint.minus_one)

let test_zint_strings () =
  Alcotest.(check string) "to_string 0" "0" (Zint.to_string Zint.zero);
  Alcotest.(check string) "to_string neg" "-12345" (Zint.to_string (z (-12345)));
  Alcotest.check zint "of_string" (z 98765) (Zint.of_string "98765");
  Alcotest.check zint "of_string neg" (z (-42)) (Zint.of_string "-42");
  Alcotest.check zint "of_string plus" (z 42) (Zint.of_string "+42");
  let big = "123456789012345678901234567890" in
  Alcotest.(check string) "big round trip" big Zint.(to_string (of_string big));
  Alcotest.(check bool) "of_string rejects garbage" true
    (try ignore (Zint.of_string "12a3"); false with Invalid_argument _ -> true);
  Alcotest.(check bool) "of_string rejects empty" true
    (try ignore (Zint.of_string ""); false with Invalid_argument _ -> true)

let test_zint_int_roundtrip () =
  List.iter
    (fun n -> Alcotest.(check (option int)) (string_of_int n) (Some n) (Zint.to_int (z n)))
    [ 0; 1; -1; 42; -42; 32767; 32768; -32768; 1 lsl 40; max_int; min_int; min_int + 1 ];
  let huge = Zint.mul (z max_int) (z 10) in
  Alcotest.(check (option int)) "too big" None (Zint.to_int huge)

let test_zint_division () =
  let check_divmod a b =
    let q_, r = Zint.divmod (z a) (z b) in
    Alcotest.(check int) (Printf.sprintf "%d / %d" a b) (a / b) (Zint.to_int_exn q_);
    Alcotest.(check int) (Printf.sprintf "%d mod %d" a b) (a mod b) (Zint.to_int_exn r)
  in
  List.iter
    (fun (a, b) -> check_divmod a b)
    [ (7, 2); (-7, 2); (7, -2); (-7, -2); (0, 5); (100, 10); (99, 100); (12345, 1) ];
  Alcotest.(check bool) "div by zero" true
    (try ignore (Zint.divmod Zint.one Zint.zero); false with Division_by_zero -> true)

let test_zint_floor_ceil_div () =
  let fc a b =
    ( Zint.to_int_exn (Zint.fdiv (z a) (z b)),
      Zint.to_int_exn (Zint.cdiv (z a) (z b)) )
  in
  Alcotest.(check (pair int int)) "7/2" (3, 4) (fc 7 2);
  Alcotest.(check (pair int int)) "-7/2" (-4, -3) (fc (-7) 2);
  Alcotest.(check (pair int int)) "7/-2" (-4, -3) (fc 7 (-2));
  Alcotest.(check (pair int int)) "-7/-2" (3, 4) (fc (-7) (-2));
  Alcotest.(check (pair int int)) "6/2 exact" (3, 3) (fc 6 2);
  Alcotest.(check (pair int int)) "-6/2 exact" (-3, -3) (fc (-6) 2)

let test_zint_gcd () =
  Alcotest.check zint "gcd 12 18" (z 6) (Zint.gcd (z 12) (z 18));
  Alcotest.check zint "gcd -12 18" (z 6) (Zint.gcd (z (-12)) (z 18));
  Alcotest.check zint "gcd 0 5" (z 5) (Zint.gcd Zint.zero (z 5));
  Alcotest.check zint "gcd 0 0" Zint.zero (Zint.gcd Zint.zero Zint.zero);
  Alcotest.check zint "lcm 4 6" (z 12) (Zint.lcm (z 4) (z 6));
  Alcotest.check zint "lcm 0 6" Zint.zero (Zint.lcm Zint.zero (z 6));
  Alcotest.(check bool) "divides" true (Zint.divides (z 3) (z 9));
  Alcotest.(check bool) "not divides" false (Zint.divides (z 3) (z 10));
  Alcotest.(check bool) "0 divides 0" true (Zint.divides Zint.zero Zint.zero);
  Alcotest.(check bool) "0 not divides 3" false (Zint.divides Zint.zero (z 3))

let test_zint_pow () =
  Alcotest.check zint "2^10" (z 1024) (Zint.pow (z 2) 10);
  Alcotest.check zint "x^0" Zint.one (Zint.pow (z 99) 0);
  Alcotest.check zint "(-2)^3" (z (-8)) (Zint.pow (z (-2)) 3);
  Alcotest.(check string) "2^100"
    "1267650600228229401496703205376"
    (Zint.to_string (Zint.pow (z 2) 100))

let test_zint_compare () =
  Alcotest.(check bool) "1 < 2" true (Zint.compare Zint.one (z 2) < 0);
  Alcotest.(check bool) "-5 < 3" true (Zint.compare (z (-5)) (z 3) < 0);
  Alcotest.(check bool) "-5 < -3" true (Zint.compare (z (-5)) (z (-3)) < 0);
  Alcotest.check zint "min" (z (-5)) (Zint.min (z (-5)) (z 3));
  Alcotest.check zint "max" (z 3) (Zint.max (z (-5)) (z 3))

(* ------------------------------------------------------------------ *)
(* Zint properties                                                     *)
(* ------------------------------------------------------------------ *)

let small = QCheck.int_range (-100000) 100000

let prop_add_matches_native =
  QCheck.Test.make ~name:"Zint.add matches native" ~count:500
    (QCheck.pair small small)
    (fun (a, b) -> Zint.to_int_exn (Zint.add (z a) (z b)) = a + b)

let prop_mul_matches_native =
  QCheck.Test.make ~name:"Zint.mul matches native" ~count:500
    (QCheck.pair small small)
    (fun (a, b) -> Zint.to_int_exn (Zint.mul (z a) (z b)) = a * b)

let prop_string_roundtrip =
  QCheck.Test.make ~name:"Zint string round trip" ~count:500
    QCheck.(pair small (int_range 0 4))
    (fun (a, e) ->
       let v = Zint.mul (z a) (Zint.pow (z 1000003) e) in
       Zint.equal v (Zint.of_string (Zint.to_string v)))

let prop_divmod_invariant =
  QCheck.Test.make ~name:"a = b*q + r, |r| < |b|, sign r = sign a" ~count:500
    QCheck.(triple small small (int_range 1 3))
    (fun (a, b, e) ->
       QCheck.assume (b <> 0);
       (* Scale up so multi-limb division paths are exercised. *)
       let za = Zint.mul (z a) (Zint.pow (z 7919) e) in
       let zb = z b in
       let q_, r = Zint.divmod za zb in
       Zint.equal za (Zint.add (Zint.mul zb q_) r)
       && Zint.compare (Zint.abs r) (Zint.abs zb) < 0
       && (Zint.is_zero r || Zint.sign r = Zint.sign za))

let prop_fdiv_cdiv =
  QCheck.Test.make ~name:"fdiv <= exact <= cdiv with equality iff divisible"
    ~count:500
    (QCheck.pair small small)
    (fun (a, b) ->
       QCheck.assume (b <> 0);
       let za = z a and zb = z b in
       let f = Zint.fdiv za zb and c = Zint.cdiv za zb in
       (* f*b <= a <= c*b for b > 0, reversed for b < 0 *)
       let fb = Zint.mul f zb and cb = Zint.mul c zb in
       if b > 0 then Zint.compare fb za <= 0 && Zint.compare za cb <= 0
       else Zint.compare za fb <= 0 && Zint.compare cb za <= 0)

let prop_ext_gcd =
  QCheck.Test.make ~name:"ext_gcd: a*x + b*y = g = gcd a b" ~count:500
    (QCheck.pair small small)
    (fun (a, b) ->
       let g, x, y = Zint.ext_gcd (z a) (z b) in
       Zint.equal g (Zint.gcd (z a) (z b))
       && Zint.equal g (Zint.add (Zint.mul (z a) x) (Zint.mul (z b) y))
       && not (Zint.is_negative g))

let prop_compare_total_order =
  QCheck.Test.make ~name:"compare agrees with native" ~count:500
    (QCheck.pair small small)
    (fun (a, b) -> Stdlib.compare a b = Zint.compare (z a) (z b))

(* ------------------------------------------------------------------ *)
(* Zint fast path vs limb path, differentially                         *)
(* ------------------------------------------------------------------ *)

(* The native-int fast path only fires when both operands are [Small],
   so adding a 2^200 offset (or scaling by it) forces every intermediate
   through the limb code: each [_ref] below computes the same
   mathematical result as the plain operation but on the Big
   representation, making the limb implementation the reference the
   fast path is checked against. *)
let k_big = Zint.pow (z 2) 200
let add_ref a b = Zint.sub (Zint.add (Zint.add a k_big) b) k_big
let sub_ref a b = Zint.sub (Zint.sub (Zint.add a k_big) b) k_big
let mul_ref a b = Zint.divexact (Zint.mul (Zint.mul a k_big) b) k_big

(* gcd (aK) (bK) = K * gcd a b, and scaling by K > 0 preserves order
   and floor/ceiling quotients. *)
let gcd_ref a b = Zint.divexact (Zint.gcd (Zint.mul a k_big) (Zint.mul b k_big)) k_big
let compare_ref a b = Zint.compare (Zint.mul a k_big) (Zint.mul b k_big)
let fdiv_ref a b = Zint.fdiv (Zint.mul a k_big) (Zint.mul b k_big)
let cdiv_ref a b = Zint.cdiv (Zint.mul a k_big) (Zint.mul b k_big)

(* The representation invariant: Small exactly when the magnitude fits
   under the guard bound. *)
let canonical v =
  Zint.is_small v = (Zint.compare (Zint.abs v) (z Zint.small_capacity) <= 0)

let cap = Zint.small_capacity

(* The exact overflow edges, enumerated: 0, +-1, the limb radix,
   2^30 (32-bit [int] boundary on other platforms), the guard bound
   +-1 on each side, and the native extremes. [cap + 1] does not fit
   the generator's [int] path on this word size only via arithmetic. *)
let boundary_values =
  List.map z
    [
      0; 1; -1; 2; -2; 1 lsl 15; (1 lsl 15) - 1; -(1 lsl 15); 1 lsl 30;
      (1 lsl 30) + 1; -(1 lsl 30); cap - 1; cap; -(cap - 1); -cap;
      max_int; max_int - 1; min_int; min_int + 1;
    ]
  @ [ Zint.succ (z cap); Zint.neg (Zint.succ (z cap)) ]

let test_zint_boundary_differential () =
  List.iter
    (fun a ->
       List.iter
         (fun b ->
            let ctx op = Printf.sprintf "%s %s %s" (Zint.to_string a) op (Zint.to_string b) in
            let chk op got ref_ =
              Alcotest.(check bool) (ctx op) true (Zint.equal got ref_);
              Alcotest.(check bool) (ctx op ^ " canonical") true (canonical got)
            in
            chk "+" (Zint.add a b) (add_ref a b);
            chk "-" (Zint.sub a b) (sub_ref a b);
            chk "*" (Zint.mul a b) (mul_ref a b);
            chk "gcd" (Zint.gcd a b) (gcd_ref a b);
            Alcotest.(check int) (ctx "cmp") (compare_ref a b) (Zint.compare a b);
            Alcotest.(check int)
              (ctx "hash")
              (Zint.hash (add_ref a b))
              (Zint.hash (Zint.add a b));
            if not (Zint.is_zero b) then begin
              chk "fdiv" (Zint.fdiv a b) (fdiv_ref a b);
              chk "cdiv" (Zint.cdiv a b) (cdiv_ref a b);
              chk "divexact" (Zint.divexact (Zint.mul a b) b) a
            end)
         boundary_values)
    boundary_values

(* Randomized operands clustered on both sides of the Small/Big
   boundary, so the promotion/demotion edges get hammered beyond the
   explicit enumeration above. *)
let arb_boundary_zint =
  let gen =
    QCheck.Gen.(
      frequency
        [
          (3, map z (int_range (-1000) 1000));
          (3, map (fun d -> Zint.add (z cap) (z d)) (int_range (-3) 3));
          (3, map (fun d -> Zint.neg (Zint.add (z cap) (z d))) (int_range (-3) 3));
          (2, map z (int_range (cap - 10) cap));
          (1, map (fun e -> Zint.pow (z 2) e) (int_range 55 70));
          (1, return (z min_int));
          (1, return (z max_int));
        ])
  in
  QCheck.make ~print:Zint.to_string gen

let prop_fastpath_differential =
  QCheck.Test.make ~name:"Zint fast path matches limb path across the boundary"
    ~count:1000
    (QCheck.pair arb_boundary_zint arb_boundary_zint)
    (fun (a, b) ->
       Zint.equal (Zint.add a b) (add_ref a b)
       && Zint.equal (Zint.sub a b) (sub_ref a b)
       && Zint.equal (Zint.mul a b) (mul_ref a b)
       && Zint.equal (Zint.gcd a b) (gcd_ref a b)
       && Zint.compare a b = compare_ref a b
       && Zint.hash (Zint.add a b) = Zint.hash (add_ref a b)
       && canonical (Zint.add a b)
       && canonical (Zint.sub a b)
       && canonical (Zint.mul a b)
       && (Zint.is_zero b
           || Zint.equal (Zint.fdiv a b) (fdiv_ref a b)
              && Zint.equal (Zint.cdiv a b) (cdiv_ref a b)
              && Zint.equal (Zint.divexact (Zint.mul a b) b) a))

(* ------------------------------------------------------------------ *)
(* Qnum                                                                *)
(* ------------------------------------------------------------------ *)

let test_qnum_canonical () =
  Alcotest.check qnum "2/4 = 1/2" (q 1 2) (q 2 4);
  Alcotest.check qnum "-1/-2 = 1/2" (q 1 2) (q (-1) (-2));
  Alcotest.check qnum "1/-2 = -1/2" (q (-1) 2) (q 1 (-2));
  Alcotest.check zint "den positive" (z 2) (Qnum.den (q 1 (-2)));
  Alcotest.check qnum "0/5 = 0" Qnum.zero (q 0 5);
  Alcotest.(check bool) "den zero raises" true
    (try ignore (Qnum.make Zint.one Zint.zero); false with Division_by_zero -> true)

let test_qnum_arith () =
  Alcotest.check qnum "1/2 + 1/3" (q 5 6) (Qnum.add (q 1 2) (q 1 3));
  Alcotest.check qnum "1/2 - 1/3" (q 1 6) (Qnum.sub (q 1 2) (q 1 3));
  Alcotest.check qnum "2/3 * 3/4" (q 1 2) (Qnum.mul (q 2 3) (q 3 4));
  Alcotest.check qnum "(1/2) / (3/4)" (q 2 3) (Qnum.div (q 1 2) (q 3 4));
  Alcotest.check qnum "inv" (q 3 2) (Qnum.inv (q 2 3));
  Alcotest.(check bool) "div by zero" true
    (try ignore (Qnum.div Qnum.one Qnum.zero); false with Division_by_zero -> true)

let test_qnum_floor_ceil () =
  let fc n d = (Zint.to_int_exn (Qnum.floor (q n d)), Zint.to_int_exn (Qnum.ceil (q n d))) in
  Alcotest.(check (pair int int)) "7/2" (3, 4) (fc 7 2);
  Alcotest.(check (pair int int)) "-7/2" (-4, -3) (fc (-7) 2);
  Alcotest.(check (pair int int)) "4/2" (2, 2) (fc 4 2);
  Alcotest.(check (pair int int)) "-4/2" (-2, -2) (fc (-4) 2)

let test_qnum_mid_integer () =
  let mid a b c d =
    Option.map Zint.to_int_exn (Qnum.mid_integer (q a b) (q c d))
  in
  Alcotest.(check (option int)) "[1/2, 5/2] -> 1" (Some 1) (mid 1 2 5 2);
  Alcotest.(check (option int)) "[1/3, 2/3] -> none" None (mid 1 3 2 3);
  Alcotest.(check (option int)) "[2, 2] -> 2" (Some 2) (mid 2 1 2 1);
  Alcotest.(check (option int)) "[-5, 5] -> 0" (Some 0) (mid (-5) 1 5 1);
  Alcotest.(check (option int)) "[3, 1] empty" None (mid 3 1 1 1)

let arb_q =
  QCheck.map
    (fun (n, d) -> Qnum.of_ints n (if d = 0 then 1 else d))
    QCheck.(pair (int_range (-1000) 1000) (int_range (-50) 50))

let prop_qnum_field =
  QCheck.Test.make ~name:"Qnum: (a+b)*c = a*c + b*c" ~count:500
    (QCheck.triple arb_q arb_q arb_q)
    (fun (a, b, c) ->
       Qnum.equal (Qnum.mul (Qnum.add a b) c) (Qnum.add (Qnum.mul a c) (Qnum.mul b c)))

let prop_qnum_floor_le =
  QCheck.Test.make ~name:"Qnum: floor <= x <= ceil, within 1" ~count:500 arb_q
    (fun x ->
       let f = Qnum.of_zint (Qnum.floor x) and c = Qnum.of_zint (Qnum.ceil x) in
       Qnum.compare f x <= 0 && Qnum.compare x c <= 0
       && Qnum.compare (Qnum.sub c f) Qnum.one <= 0)

let prop_qnum_mid_integer_in_range =
  QCheck.Test.make ~name:"Qnum.mid_integer lands in range" ~count:500
    (QCheck.pair arb_q arb_q)
    (fun (a, b) ->
       let lo = Qnum.min a b and hi = Qnum.max a b in
       match Qnum.mid_integer lo hi with
       | Some m ->
         let m = Qnum.of_zint m in
         Qnum.compare lo m <= 0 && Qnum.compare m hi <= 0
       | None ->
         (* No integer in [lo, hi]: floor hi < ceil lo. *)
         Zint.compare (Qnum.floor hi) (Qnum.ceil lo) < 0)

(* ------------------------------------------------------------------ *)
(* Ext_int                                                             *)
(* ------------------------------------------------------------------ *)

let ext = Alcotest.testable Ext_int.pp Ext_int.equal

let test_ext_int () =
  let open Ext_int in
  Alcotest.(check bool) "-oo < 0" true (compare neg_inf (of_int 0) < 0);
  Alcotest.(check bool) "0 < +oo" true (compare (of_int 0) pos_inf < 0);
  Alcotest.(check bool) "-oo < +oo" true (compare neg_inf pos_inf < 0);
  Alcotest.check ext "min" neg_inf (min neg_inf (of_int 3));
  Alcotest.check ext "max" pos_inf (max pos_inf (of_int 3));
  Alcotest.check ext "add fin" (of_int 5) (add (of_int 2) (of_int 3));
  Alcotest.check ext "add inf" pos_inf (add pos_inf (of_int 3));
  Alcotest.check ext "neg" pos_inf (neg neg_inf);
  Alcotest.check ext "mul pos" pos_inf (mul_zint (z 2) pos_inf);
  Alcotest.check ext "mul neg" neg_inf (mul_zint (z (-2)) pos_inf);
  Alcotest.check ext "mul fin" (of_int (-6)) (mul_zint (z (-2)) (of_int 3));
  (* The indeterminate forms are total: each rounds to the safe side
     for the bound it is used in. *)
  Alcotest.check ext "add rounds -oo +oo up" pos_inf (add neg_inf pos_inf);
  Alcotest.check ext "add_down rounds -oo +oo down" neg_inf
    (add_down neg_inf pos_inf);
  Alcotest.check ext "add_down agrees on fin" (of_int 5)
    (add_down (of_int 2) (of_int 3));
  Alcotest.check ext "add_down agrees on one-sided inf" neg_inf
    (add_down neg_inf (of_int 3));
  Alcotest.check ext "0 * oo collapses" (of_int 0) (mul_zint Zint.zero pos_inf);
  Alcotest.check ext "0 * -oo collapses" (of_int 0) (mul_zint Zint.zero neg_inf)

(* Every Ext_int operation is total, and the two additions bracket any
   resolution of the indeterminate form: add_down <= add pointwise. *)
let arb_ext =
  QCheck.make
    ~print:(Format.asprintf "%a" Ext_int.pp)
    QCheck.Gen.(
      frequency
        [
          (1, return Ext_int.neg_inf);
          (1, return Ext_int.pos_inf);
          (6, map (fun n -> Ext_int.of_int n) (int_range (-1000) 1000));
        ])

let prop_ext_int_total =
  QCheck.Test.make ~name:"ext-int arithmetic is total and add_down <= add"
    ~count:1000
    QCheck.(triple arb_ext arb_ext (int_range (-5) 5))
    (fun (a, b, k) ->
       let up = Ext_int.add a b and down = Ext_int.add_down a b in
       ignore (Ext_int.mul_zint (z k) a);
       ignore (Ext_int.neg a);
       Ext_int.compare down up <= 0
       && (Ext_int.is_finite a && Ext_int.is_finite b)
          = (Ext_int.equal down up && Ext_int.is_finite up))

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "numeric"
    [
      ( "zint-unit",
        [
          Alcotest.test_case "basics" `Quick test_zint_basics;
          Alcotest.test_case "strings" `Quick test_zint_strings;
          Alcotest.test_case "int round trip" `Quick test_zint_int_roundtrip;
          Alcotest.test_case "division" `Quick test_zint_division;
          Alcotest.test_case "floor/ceil division" `Quick test_zint_floor_ceil_div;
          Alcotest.test_case "gcd/lcm" `Quick test_zint_gcd;
          Alcotest.test_case "pow" `Quick test_zint_pow;
          Alcotest.test_case "compare" `Quick test_zint_compare;
        ] );
      ( "zint-prop",
        [
          qt prop_add_matches_native;
          qt prop_mul_matches_native;
          qt prop_string_roundtrip;
          qt prop_divmod_invariant;
          qt prop_fdiv_cdiv;
          qt prop_ext_gcd;
          qt prop_compare_total_order;
        ] );
      ( "zint-fastpath-differential",
        [
          Alcotest.test_case "boundary enumeration" `Quick
            test_zint_boundary_differential;
          qt prop_fastpath_differential;
        ] );
      ( "qnum",
        [
          Alcotest.test_case "canonical" `Quick test_qnum_canonical;
          Alcotest.test_case "arithmetic" `Quick test_qnum_arith;
          Alcotest.test_case "floor/ceil" `Quick test_qnum_floor_ceil;
          Alcotest.test_case "mid_integer" `Quick test_qnum_mid_integer;
          qt prop_qnum_field;
          qt prop_qnum_floor_le;
          qt prop_qnum_mid_integer_in_range;
        ] );
      ( "ext-int",
        [
          Alcotest.test_case "extended integers" `Quick test_ext_int;
          qt prop_ext_int_total;
        ] );
    ]
