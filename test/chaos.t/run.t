Fault injection and resource governance: the DDA_FAILPOINTS harness,
batch fault isolation, and budget-degraded analysis.

  $ cat > one.dd <<'EOF'
  > for i = 1 to 10 do
  >   a[i + 1] = a[i] + 3
  > end
  > EOF

  $ cat > two.dd <<'EOF'
  > for i = 1 to 10 do
  >   b[2 * i] = b[i] + 3
  > end
  > EOF

A failpoint that crashes the first batch item once: the retry absorbs
it, the batch completes, and the engine summary records the retry.

  $ DDA_FAILPOINTS='batch.item=raise@1' ddtest batch one.dd two.dd --jobs 1 --retry-backoff-ms 0
  == one.dd ==
  a[self]  2:3 x 2:3:  independent
  a[pair]  2:3 x 2:14:  dependent directions: (<)[flow] distance: (1)
  == two.dd ==
  b[self]  2:3 x 2:3:  independent
  b[pair]  2:3 x 2:14:  dependent directions: (<)[flow]
  
  == corpus: 2 programs ==
  engine: 1 retried, 0 quarantined
  
  -- statistics --
  pairs analyzed:      4
  constant subscripts: 0
  gcd independent:     0
  assumed dependent:   0
  plain tests:         svpc=0 acyclic=0 loop-residue=0 fourier=0
  direction tests:     svpc=7 acyclic=0 loop-residue=0 fourier=0
  memo (gcd table):    4 lookups, 0 hits, 4 unique
  memo (full table):   4 lookups, 0 hits, 4 unique
  verdicts:            2 independent, 2 dependent



A failpoint that crashes the first item on both attempts: the item is
quarantined with its error, the rest of the corpus still completes,
and the exit code reports the quarantine.

  $ DDA_FAILPOINTS='batch.item=raise@1-2' ddtest batch one.dd two.dd --jobs 1 --retry-backoff-ms 0
  == one.dd ==
  QUARANTINED after 2 attempts: failpoint "batch.item" injected
  == two.dd ==
  b[self]  2:3 x 2:3:  independent
  b[pair]  2:3 x 2:14:  dependent directions: (<)[flow]
  
  == corpus: 2 programs ==
  engine: 1 retried, 1 quarantined
  
  -- statistics --
  pairs analyzed:      2
  constant subscripts: 0
  gcd independent:     0
  assumed dependent:   0
  plain tests:         svpc=0 acyclic=0 loop-residue=0 fourier=0
  direction tests:     svpc=5 acyclic=0 loop-residue=0 fourier=0
  memo (gcd table):    2 lookups, 0 hits, 2 unique
  memo (full table):   2 lookups, 0 hits, 2 unique
  verdicts:            1 independent, 1 dependent
  [3]



With --retries 0 there is no second attempt:

  $ DDA_FAILPOINTS='batch.item=raise@1' ddtest batch one.dd two.dd --jobs 1 --retries 0 --format json | sed -n '1,5p'
  {"programs": [{"file": "one.dd",
                  "quarantined": true,
                  "attempts": 1,
                  "error": "failpoint \"batch.item\" injected"},
                 {"file": "two.dd",

A starvation budget: every query that runs out is reported dependent
with an explicit degraded marker instead of crashing or hanging.

  $ ddtest analyze two.dd --budget-steps 5 --stats
  b[self]  2:3 x 2:3:  dependent (degraded: steps budget exhausted) directions: (=)[output] distance: (0)
  b[pair]  2:3 x 2:14:  dependent (degraded: steps budget exhausted) directions: (*)[flow]
  
  -- statistics --
  pairs analyzed:      2
  constant subscripts: 0
  gcd independent:     0
  assumed dependent:   0
  plain tests:         svpc=0 acyclic=0 loop-residue=0 fourier=0
  direction tests:     svpc=2 acyclic=0 loop-residue=0 fourier=0
  memo (gcd table):    2 lookups, 0 hits, 2 unique
  memo (full table):   2 lookups, 0 hits, 2 unique
  verdicts:            0 independent, 2 dependent
  degraded (budget):   2


The JSON form carries the budget reason and drops the exactness claim:

  $ ddtest analyze two.dd --budget-steps 5 --format json | grep -E 'verdict|exact|degraded'
               "outcome": {"verdict": "dependent",
                            "exact": false,
                            "degraded": "steps",
                "outcome": {"verdict": "dependent",
                             "exact": false,
                             "degraded": "steps",
               "degraded_pairs": 2}}

Checking a degraded report is not a failure: the verdicts are honest
over-approximations, so the checker warns and exits 0.

  $ ddtest check two.dd --budget-steps 5
  two.dd:2:3: warning: [degraded] array 'b': replaying a direction obligation exhausted the steps budget; the conservative verdict stands uncertified
  two.dd:2:3: warning: [fm-exhausted] array 'b': a direction obligation exhausted the Fourier-Motzkin branch budget; the self dependence is assumed, not certified
  OK: 2 pairs, 1 certificates checked; 0 errors, 2 warnings

An invalid failpoint spec never kills the analysis — it is diagnosed
and ignored:

  $ DDA_FAILPOINTS='bogus=raise' ddtest analyze two.dd
  warning: DDA_FAILPOINTS ignored: unknown site "bogus"
  b[self]  2:3 x 2:3:  independent
  b[pair]  2:3 x 2:14:  dependent directions: (<)[flow]

  $ DDA_FAILPOINTS='fourier.solve=frobnicate' ddtest analyze two.dd
  warning: DDA_FAILPOINTS ignored: unknown action "frobnicate"
  b[self]  2:3 x 2:3:  independent
  b[pair]  2:3 x 2:14:  dependent directions: (<)[flow]

Streaming chaos: delay injection perturbs timing, never results. A
journaled streamed run under delay chaos — across two worker domains —
is byte-identical to the quiet run, journal included.

  $ ddtest batch --stream --journal quiet.journal one.dd two.dd > quiet.txt
  $ DDA_FAILPOINTS='fourier.solve=delay:1,analyzer.pair=delay:1' ddtest batch --stream --journal noisy.journal --jobs 2 one.dd two.dd > noisy.txt
  $ cmp quiet.txt noisy.txt && echo identical
  identical
  $ cmp quiet.journal noisy.journal && echo identical
  identical

Exhaust chaos with a crash mid-journal: per-item isolation absorbs the
injected budget failure (quarantining once retries run out), the
write-ahead journal keeps exactly the acknowledged records — fsynced
before the result is printed, so a crash never leaves a torn final
record — and the run is resumable.

  $ DDA_FAILPOINTS='batch.item=exhaust@2,stream.journal=raise@3' ddtest batch --stream --journal chaos.journal --retries 0 --jobs 1 one.dd two.dd one.dd two.dd > chaos.txt
  ddtest: error: failpoint "stream.journal" injected
  [1]
  $ grep -c '' chaos.journal
  3
  $ ddtest batch --stream --journal chaos.journal --resume --jobs 1 one.dd two.dd one.dd two.dd > final.txt
  [3]
  $ grep -A 1 'two.dd' final.txt | head -2
  == two.dd ==
  QUARANTINED after 1 attempt: Dda_core.Budget.Exhausted(4)

The journaled quarantine replays like any other record: a second
resume of the now-complete journal is byte-identical.

  $ ddtest batch --stream --journal chaos.journal --resume --jobs 1 one.dd two.dd one.dd two.dd > final2.txt
  [3]
  $ cmp final.txt final2.txt && echo identical
  identical

SIGINT during a journaled streamed run: the handler stops intake,
lets in-flight items finish, flushes and fsyncs the journal, and exits
130 with a pointer at --resume. The slow-item failpoint holds the run
open long enough to interrupt it deterministically.

  $ ddtest batch --stream --journal sig_clean.journal --jobs 1 one.dd two.dd one.dd two.dd one.dd two.dd one.dd two.dd one.dd two.dd one.dd two.dd > sig_clean.txt
  $ DDA_FAILPOINTS='batch.item=delay:150' ddtest batch --stream --journal sig.journal --jobs 1 one.dd two.dd one.dd two.dd one.dd two.dd one.dd two.dd one.dd two.dd one.dd two.dd > sig.txt 2> sig.log &
  $ PID=$!
  $ sleep 0.4
  $ kill -INT $PID
  $ wait $PID
  [130]
  $ grep -c 'stream: interrupted' sig.log
  1
  $ [ $(grep -c '' sig.journal) -ge 2 ] && echo flushed
  flushed

The journal is intact and resumable; the completed run is
byte-identical to one that was never interrupted:

  $ ddtest batch --stream --journal sig.journal --resume --jobs 1 one.dd two.dd one.dd two.dd one.dd two.dd one.dd two.dd one.dd two.dd one.dd two.dd > sig_resumed.txt
  $ cmp sig_clean.txt sig_resumed.txt && echo identical
  identical
  $ cmp sig_clean.journal sig.journal && echo identical
  identical
