(* End-to-end analyzer tests: the paper's worked examples as unit
   tests, and the master exactness property — on random affine loop
   nests, the analyzer's verdicts, direction vectors, and distance
   vectors must match the brute-force execution-trace oracle
   exactly. *)

open Dda_numeric
open Dda_lang
open Dda_core

let parse = Parser.parse_program

(* Full refinement and no canonicalization: every reported vector is
   concrete, so it can be compared to the oracle as an exact set.
   (Memo_improved may drop unused common levels and report them as "*",
   which is the paper's summarized form — covered by a separate
   property.) *)
let exact_config =
  {
    Analyzer.default_config with
    Analyzer.prune = Direction.no_pruning;
    memo = Analyzer.Memo_simple;
    run_pipeline = false;
    within_nest_only = false;
  }

let plain_config =
  {
    Analyzer.default_config with
    Analyzer.directions = false;
    run_pipeline = false;
    within_nest_only = false;
  }

let analyze ?(config = exact_config) src = Analyzer.analyze ~config (parse src)

(* The single non-self pair of a simple loop. *)
let only_pair (report : Analyzer.report) =
  match List.filter (fun (r : Analyzer.pair_report) -> not r.self_pair) report.pair_reports with
  | [ r ] -> r
  | rs -> Alcotest.failf "expected 1 non-self pair, got %d" (List.length rs)

let dirs_to_string vs =
  String.concat " " (List.map (Format.asprintf "%a" Direction.pp_vector) vs)

(* ------------------------------------------------------------------ *)
(* Paper examples                                                      *)
(* ------------------------------------------------------------------ *)

let test_intro_independent () =
  let r = only_pair (analyze "for i = 1 to 10 do a[i] = a[i+10] + 3 end") in
  match r.outcome with
  | Analyzer.Tested t -> Alcotest.(check bool) "independent" false t.dependent
  | _ -> Alcotest.fail "expected tested outcome"

let test_intro_dependent () =
  let r = only_pair (analyze "for i = 1 to 10 do a[i+1] = a[i] + 3 end") in
  match r.outcome with
  | Analyzer.Tested t ->
    Alcotest.(check bool) "dependent" true t.dependent;
    Alcotest.(check string) "direction <" "(<)" (dirs_to_string t.directions);
    (match t.distance with
     | Some d -> Alcotest.(check int) "distance 1" 1 (Zint.to_int_exn d.(0))
     | None -> Alcotest.fail "expected distance")
  | _ -> Alcotest.fail "expected tested outcome"

let test_intro_plain_mode () =
  (* Same examples through the plain (no direction vectors) cascade,
     checking which test decides. *)
  let r =
    only_pair (Analyzer.analyze ~config:plain_config (parse "for i = 1 to 10 do a[i] = a[i+10] + 3 end"))
  in
  (match r.outcome with
   | Analyzer.Tested { dependent = false; decided_by = Some Cascade.T_svpc; _ } -> ()
   | _ -> Alcotest.fail "expected SVPC independence");
  let r2 =
    only_pair (Analyzer.analyze ~config:plain_config (parse "for i = 1 to 10 do a[i+1] = a[i] + 3 end"))
  in
  match r2.outcome with
  | Analyzer.Tested { dependent = true; decided_by = Some Cascade.T_svpc; _ } -> ()
  | _ -> Alcotest.fail "expected SVPC dependence"

let test_coupled_svpc_example () =
  (* Section 3.2: a[i1][i2] = a[i2+10][i1+9], both loops 1..10:
     independent, and SVPC suffices even though subscripts are
     coupled. *)
  let src =
    "for i1 = 1 to 10 do for i2 = 1 to 10 do a[i1][i2] = a[i2+10][i1+9] end end"
  in
  let r = only_pair (Analyzer.analyze ~config:plain_config (parse src)) in
  match r.outcome with
  | Analyzer.Tested { dependent = false; decided_by = Some Cascade.T_svpc; _ } -> ()
  | Analyzer.Tested { decided_by = Some t; dependent; _ } ->
    Alcotest.failf "decided by %s dependent=%b" (Cascade.test_name t) dependent
  | _ -> Alcotest.fail "expected tested"

let test_section6_write_2i () =
  (* a[i][j] = a[2i][j] + 7 on 0..10 squares: dependent with vectors
     (=,=) and (>,=). *)
  let src =
    "for i = 0 to 10 do for j = 0 to 10 do a[i][j] = a[2*i][j] + 7 end end"
  in
  let r = only_pair (analyze src) in
  match r.outcome with
  | Analyzer.Tested t ->
    Alcotest.(check bool) "dependent" true t.dependent;
    Alcotest.(check string) "vectors" "(=,=) (>,=)" (dirs_to_string t.directions)
  | _ -> Alcotest.fail "expected tested"

let test_constant_subscripts () =
  let r3 = analyze "for i = 1 to 10 do a[3] = a[4] + 1 end" in
  let r = only_pair r3 in
  (match r.outcome with
   | Analyzer.Constant false -> ()
   | _ -> Alcotest.fail "a[3] vs a[4] should be constant-independent");
  Alcotest.(check int) "counted as constant case" 1 r3.stats.constant_cases;
  let r4 = only_pair (analyze "for i = 1 to 10 do a[3] = a[3] + 1 end") in
  match r4.outcome with
  | Analyzer.Constant true -> ()
  | _ -> Alcotest.fail "a[3] vs a[3] should be constant-dependent"

let test_symbolic_section8 () =
  (* read(n); a[i+n] = a[i+2n+1]: dependent for suitable n (n = i-i'-1
     always exists), and the analyzer should actually test it rather
     than give up. *)
  let src = "read(n)\nfor i = 1 to 10 do a[i+n] = a[i+2*n+1] + 3 end" in
  let r = only_pair (analyze src) in
  (match r.outcome with
   | Analyzer.Tested t -> Alcotest.(check bool) "dependent" true t.dependent
   | _ -> Alcotest.fail "expected tested outcome with symbolic mode");
  (* Without symbolic mode the same pair is assumed dependent. *)
  let cfg = { exact_config with Analyzer.symbolic = false } in
  let r2 = only_pair (Analyzer.analyze ~config:cfg (parse src)) in
  match r2.outcome with
  | Analyzer.Assumed_dependent -> ()
  | _ -> Alcotest.fail "expected assumed-dependent without symbolic mode"

let test_symbolic_exact_independence () =
  (* i + n = i' + n + 11 has no solution with 1 <= i,i' <= 10 whatever
     n is: symbolic mode proves independence where non-symbolic mode
     must assume dependence. *)
  let src = "read(n)\nfor i = 1 to 10 do a[i+n] = a[i+n+11] + 3 end" in
  let r = only_pair (analyze src) in
  (match r.outcome with
   | Analyzer.Tested t -> Alcotest.(check bool) "independent" false t.dependent
   | _ -> Alcotest.fail "expected tested");
  let cfg = { exact_config with Analyzer.symbolic = false } in
  let r2 = only_pair (Analyzer.analyze ~config:cfg (parse src)) in
  match r2.outcome with
  | Analyzer.Assumed_dependent -> ()
  | _ -> Alcotest.fail "expected assumed-dependent"

let test_symbolic_versioning () =
  (* n is redefined between the two references: the two n's must NOT be
     identified. a[n] = ...; n changes; ... = a[n]: the analyzer cannot
     prove independence (n#1 vs n#2 unconstrained, could collide), and
     must not claim dependence-freedom. It must also not treat them as
     equal (which the all-= claim would witness). *)
  let src = "read(n)\nb[n] = 1\nread(n)\nt = b[n]" in
  let report = analyze src in
  let r = only_pair report in
  (match r.outcome with
   | Analyzer.Tested t ->
     (* Different versions may or may not collide: exact answer is
        "dependent" (there exist n1 = n2 runs). *)
     Alcotest.(check bool) "cannot rule out collision" true t.dependent
   | _ -> Alcotest.fail "expected tested");
  (* Control: if n is NOT redefined, the subscripts are equal and the
     pair is dependent. *)
  let r2 = only_pair (analyze "read(n)\nb[n] = 1\nt = b[n]") in
  match r2.outcome with
  | Analyzer.Tested t -> Alcotest.(check bool) "same n collides" true t.dependent
  | _ -> Alcotest.fail "expected tested"

let test_distance_not_constant () =
  (* Paper section 6: for the pair a[10i+j] vs a[10(i+2)+j] the
     distance (2,0) is only constant because of the bounds; the GCD
     map cannot see it, so no distance vector is reported - but the
     dependence and its direction are still found. *)
  let src =
    "for i = 1 to 8 do for j = 1 to 10 do a[10*i+j] = a[10*(i+2)+j] + 7 end end"
  in
  let r = only_pair (analyze src) in
  match r.outcome with
  | Analyzer.Tested t ->
    Alcotest.(check bool) "dependent" true t.dependent;
    Alcotest.(check bool) "no constant distance" true (t.distance = None)
  | _ -> Alcotest.fail "expected tested"

let test_control_flow_conservative () =
  (* The analyzer ignores conditionals: a guard that never lets the
     references execute still yields "dependent" — sound, not exact
     (and the exactness properties therefore generate if-free
     programs). *)
  let src = "for i = 1 to 10 do\n  if i < 0 then a[i+1] = a[i] + 1 end\nend" in
  let report = analyze src in
  let r = only_pair report in
  (match r.outcome with
   | Analyzer.Tested t -> Alcotest.(check bool) "claims dependent" true t.dependent
   | _ -> Alcotest.fail "expected tested");
  let obs = Trace.observe (parse src) ~site1:r.loc1 ~site2:r.loc2 in
  Alcotest.(check bool) "but nothing executes" false obs.dependent

let test_parallel_loops_client () =
  let prog = parse "for i = 1 to 10 do a[i] = a[i+10] + 3 end\nfor j = 1 to 10 do b[j+1] = b[j] + 3 end" in
  let sites = Affine.extract prog in
  let report = Analyzer.analyze ~config:exact_config prog in
  match Analyzer.parallel_loops report sites with
  | [ (_, p1); (_, p2) ] ->
    Alcotest.(check bool) "first loop parallel" true p1;
    Alcotest.(check bool) "second loop serial" false p2
  | l -> Alcotest.failf "expected 2 loops, got %d" (List.length l)

let test_self_pair_output_dependence () =
  (* a[5] written every iteration: output dependence on itself. *)
  let report = analyze "for i = 1 to 4 do a[5] = i end" in
  (match report.pair_reports with
   | [ { self_pair = true; outcome = Analyzer.Tested t; _ } ] ->
     Alcotest.(check bool) "self dependent" true t.dependent;
     Alcotest.(check string) "both non-eq directions" "(<) (>)"
       (dirs_to_string t.directions)
   | _ -> Alcotest.fail "expected single self pair");
  (* a[i]: never collides with itself across iterations. *)
  let report2 = analyze "for i = 1 to 4 do a[i] = i end" in
  match report2.pair_reports with
  | [ { self_pair = true; outcome = Analyzer.Tested t; _ } ] ->
    Alcotest.(check bool) "self independent" false t.dependent
  | _ -> Alcotest.fail "expected single self pair"

let test_triangular_bounds () =
  (* Triangular nest: for i, for j = i+1 to 10: a[i][j] vs a[j][i] can
     never overlap because j > i on the write and the read transposes. *)
  let src =
    "for i = 1 to 10 do for j = i+1 to 10 do a[i][j] = a[j][i] + 1 end end"
  in
  let r = only_pair (analyze src) in
  match r.outcome with
  | Analyzer.Tested t -> Alcotest.(check bool) "independent" false t.dependent
  | _ -> Alcotest.fail "expected tested"

(* ------------------------------------------------------------------ *)
(* Master exactness property vs the execution oracle                   *)
(* ------------------------------------------------------------------ *)

let dir_of_trace = function
  | Trace.Lt -> Direction.Dlt
  | Trace.Eq -> Direction.Deq
  | Trace.Gt -> Direction.Dgt

let vector_key v =
  String.concat ""
    (List.map (function
       | Direction.Dlt -> "<"
       | Direction.Deq -> "="
       | Direction.Dgt -> ">"
       | Direction.Dany -> "*")
       (Array.to_list v))

let check_program_against_oracle prog =
  let report = Analyzer.analyze ~config:exact_config prog in
  List.for_all
    (fun (r : Analyzer.pair_report) ->
       let obs = Trace.observe prog ~site1:r.loc1 ~site2:r.loc2 in
       match r.outcome with
       | Analyzer.Constant dep -> dep = obs.dependent
       | Analyzer.Gcd_independent -> not obs.dependent
       | Analyzer.Assumed_dependent ->
         QCheck.Test.fail_reportf "unexpected non-affine pair"
       | Analyzer.Tested t ->
         let verdict_ok = t.dependent = obs.dependent in
         let analysis_vecs =
           List.sort_uniq compare (List.map vector_key t.directions)
         in
         let oracle_vecs =
           List.sort_uniq compare
             (List.map
                (fun ds -> vector_key (Array.of_list (List.map dir_of_trace ds)))
                obs.directions)
         in
         let vectors_ok = analysis_vecs = oracle_vecs in
         let distance_ok =
           match t.distance with
           | None -> true
           | Some d ->
             let d = Array.to_list (Array.map Zint.to_int_exn d) in
             (not obs.dependent) || List.for_all (fun od -> od = d) obs.distances
         in
         if not (verdict_ok && vectors_ok && distance_ok) then
           QCheck.Test.fail_reportf
             "pair %s/%s: verdict %b vs %b; vectors [%s] vs oracle [%s]"
             (Loc.to_string r.loc1) (Loc.to_string r.loc2) t.dependent
             obs.dependent
             (String.concat ";" analysis_vecs)
             (String.concat ";" oracle_vecs)
         else true)
    report.pair_reports

let prop_analyzer_exact =
  QCheck.Test.make ~name:"analyzer matches execution oracle exactly" ~count:250
    Test_support.Gen_ast.arb_affine_nest check_program_against_oracle

(* A concrete vector is covered by a claimed vector when each level
   matches or the claim is "*". *)
let covered concrete claim =
  Array.length concrete = Array.length claim
  && (let ok = ref true in
      Array.iteri
        (fun i c ->
           match claim.(i) with
           | Direction.Dany -> ()
           | d -> if d <> c then ok := false)
        concrete;
      !ok)

let prop_memo_transparent =
  QCheck.Test.make ~name:"memoization does not change any verdict" ~count:150
    Test_support.Gen_ast.arb_affine_nest
    (fun prog ->
       let strip (r : Analyzer.report) =
         List.map
           (fun (p : Analyzer.pair_report) ->
              ( p.loc1,
                p.loc2,
                match p.outcome with
                | Analyzer.Tested t -> ("t", t.dependent)
                | Analyzer.Constant d -> ("c", d)
                | Analyzer.Gcd_independent -> ("g", false)
                | Analyzer.Assumed_dependent -> ("a", true) ))
           r.pair_reports
       in
       let vectors (r : Analyzer.report) =
         List.map
           (fun (p : Analyzer.pair_report) ->
              match p.outcome with Analyzer.Tested t -> t.directions | _ -> [])
           r.pair_reports
       in
       let with_memo m = { exact_config with Analyzer.memo = m } in
       let off = Analyzer.analyze ~config:(with_memo Analyzer.Memo_off) prog in
       let simple = Analyzer.analyze ~config:(with_memo Analyzer.Memo_simple) prog in
       let improved = Analyzer.analyze ~config:(with_memo Analyzer.Memo_improved) prog in
       (* Verdicts identical everywhere; simple memo changes nothing at
          all; improved memo may summarize dropped levels as "*" but
          must cover every concrete vector. *)
       strip off = strip simple
       && strip off = strip improved
       && vectors off = vectors simple
       && List.for_all2
            (fun concrete claimed ->
               List.for_all (fun c -> List.exists (covered c) claimed) concrete)
            (vectors off) (vectors improved))

let prop_pruning_sound =
  QCheck.Test.make ~name:"pruned vectors cover the oracle's vectors" ~count:150
    Test_support.Gen_ast.arb_affine_nest
    (fun prog ->
       let cfg =
         { exact_config with Analyzer.prune = Direction.full_pruning }
       in
       let report = Analyzer.analyze ~config:cfg prog in
       List.for_all
         (fun (r : Analyzer.pair_report) ->
            let obs = Trace.observe prog ~site1:r.loc1 ~site2:r.loc2 in
            match r.outcome with
            | Analyzer.Constant dep -> dep = obs.dependent
            | Analyzer.Gcd_independent | Analyzer.Assumed_dependent -> true
            | Analyzer.Tested t ->
              (* Same dependent/independent verdict... *)
              t.dependent = obs.dependent
              && (* ...and every observed vector matched by some
                    (possibly wildcarded) reported vector. *)
              List.for_all
                (fun ods ->
                   let ov = List.map dir_of_trace ods in
                   List.exists
                     (fun av ->
                        List.length ov = Array.length av
                        && List.for_all2
                             (fun o a -> a = Direction.Dany || a = o)
                             ov (Array.to_list av))
                     t.directions)
                obs.directions)
         report.pair_reports)

let prop_separable_exact =
  QCheck.Test.make
    ~name:"dimension-by-dimension refinement matches the oracle exactly"
    ~count:150 Test_support.Gen_ast.arb_affine_nest
    (fun prog ->
       (* Unused/distance pruning off so every vector is concrete; the
          separable cross product must still be the oracle's set. *)
       let cfg =
         {
           exact_config with
           Analyzer.prune =
             { Direction.no_pruning with Direction.separable = true };
         }
       in
       let report = Analyzer.analyze ~config:cfg prog in
       List.for_all
         (fun (r : Analyzer.pair_report) ->
            let obs = Trace.observe prog ~site1:r.loc1 ~site2:r.loc2 in
            match r.outcome with
            | Analyzer.Constant dep -> dep = obs.dependent
            | Analyzer.Gcd_independent -> not obs.dependent
            | Analyzer.Assumed_dependent -> true
            | Analyzer.Tested t ->
              t.dependent = obs.dependent
              && List.sort_uniq compare (List.map vector_key t.directions)
                 = List.sort_uniq compare
                     (List.map
                        (fun ds ->
                           vector_key (Array.of_list (List.map dir_of_trace ds)))
                        obs.directions))
         report.pair_reports)

(* Symbolic analysis is input-independent; its claims must hold for
   every concrete input: an "independent" verdict means no input
   exhibits a dependence, and the direction-vector set must cover
   whatever any input exhibits. *)
let prop_symbolic_sound_for_all_inputs =
  QCheck.Test.make ~name:"symbolic verdicts sound for every sampled input"
    ~count:60 Test_support.Gen_ast.arb_symbolic_nest
    (fun prog ->
       (* Keep the oracle affordable: skip the largest iteration
          spaces. *)
       let loops = ref [] in
       Ast.iter_stmts
         (fun s ->
            match s.Ast.sdesc with
            | Ast.For _ -> loops := s :: !loops
            | _ -> ())
         prog;
       QCheck.assume (List.length !loops <= 2);
       let report = Analyzer.analyze ~config:exact_config prog in
       List.for_all
         (fun n ->
            let inputs = [ ("n", n) ] in
            List.for_all
              (fun (r : Analyzer.pair_report) ->
                 let obs = Trace.observe ~inputs prog ~site1:r.loc1 ~site2:r.loc2 in
                 match r.outcome with
                 | Analyzer.Constant dep -> dep = obs.dependent
                 | Analyzer.Gcd_independent -> not obs.dependent
                 | Analyzer.Assumed_dependent -> true
                 | Analyzer.Tested t ->
                   if not t.dependent then not obs.dependent
                   else
                     (* Coverage: every observed vector appears. *)
                     List.for_all
                       (fun ds ->
                          let ov =
                            vector_key (Array.of_list (List.map dir_of_trace ds))
                          in
                          List.exists (fun av -> vector_key av = ov) t.directions)
                       obs.directions)
              report.pair_reports)
         [ -3; 0; 2 ])

let prop_plain_verdict_matches_oracle =
  QCheck.Test.make ~name:"plain cascade verdict matches oracle" ~count:200
    Test_support.Gen_ast.arb_affine_nest
    (fun prog ->
       let report = Analyzer.analyze ~config:plain_config prog in
       List.for_all
         (fun (r : Analyzer.pair_report) ->
            let obs = Trace.observe prog ~site1:r.loc1 ~site2:r.loc2 in
            match r.outcome with
            | Analyzer.Constant dep -> dep = obs.dependent
            | Analyzer.Gcd_independent -> not obs.dependent
            | Analyzer.Assumed_dependent -> true
            | Analyzer.Tested t ->
              (not t.unknown) && t.dependent = obs.dependent)
         report.pair_reports)

(* Two sessions advanced in lockstep over the same programs: each
   call's memo statistics must be the per-call delta of that session's
   own tables — never polluted by the other session's interleaved
   activity — and the deltas must sum back to the lifetime counters
   [session_table_stats] reports. *)
let test_interleaved_session_stats () =
  let config =
    { Analyzer.default_config with Analyzer.memo = Analyzer.Memo_improved }
  in
  let p1 = parse "for i = 1 to 10 do a[i] = a[i+1] + a[2*i] end" in
  let p2 = parse "for i = 1 to 8 do for j = 1 to 8 do b[i+j] = b[i+j+1] end end" in
  let sequence = [ p1; p2; p1 ] in
  let s1 = Analyzer.create_session ~config () in
  let s2 = Analyzer.create_session ~config () in
  let calls =
    List.map
      (fun p ->
         let r1 = Analyzer.analyze_session s1 p in
         let r2 = Analyzer.analyze_session s2 p in
         (r1.Analyzer.stats, r2.Analyzer.stats))
      sequence
  in
  List.iteri
    (fun i ((a : Analyzer.stats), (b : Analyzer.stats)) ->
       Alcotest.(check int)
         (Printf.sprintf "call %d: same full-table lookups either session" i)
         a.memo_lookups_full b.memo_lookups_full;
       Alcotest.(check int)
         (Printf.sprintf "call %d: same full-table hits either session" i)
         a.memo_hits_full b.memo_hits_full;
       Alcotest.(check int)
         (Printf.sprintf "call %d: same gcd-table lookups either session" i)
         a.memo_lookups_nobounds b.memo_lookups_nobounds)
    calls;
  (* Re-analyzing p1 must hit on every single case: a cumulative (or
     cross-contaminated) delta would break one of these equalities. *)
  (match (List.nth calls 0, List.nth calls 2) with
   | (first, _), (again, _) ->
     Alcotest.(check int) "same work both times p1 is analyzed"
       first.Analyzer.memo_lookups_full again.Analyzer.memo_lookups_full;
     Alcotest.(check int) "second pass over p1 hits every case"
       again.Analyzer.memo_lookups_full again.Analyzer.memo_hits_full;
     Alcotest.(check bool) "first pass over p1 missed at least once" true
       (first.Analyzer.memo_hits_full < first.Analyzer.memo_lookups_full));
  let sum f = List.fold_left (fun acc (a, _) -> acc + f a) 0 calls in
  let gcd_stats, full_stats = Analyzer.session_table_stats s1 in
  Alcotest.(check int) "per-call full lookups sum to the lifetime counter"
    (sum (fun (s : Analyzer.stats) -> s.memo_lookups_full))
    full_stats.Memo_table.lookups;
  Alcotest.(check int) "per-call full hits sum to the lifetime counter"
    (sum (fun (s : Analyzer.stats) -> s.memo_hits_full))
    full_stats.Memo_table.hits;
  Alcotest.(check int) "per-call gcd lookups sum to the lifetime counter"
    (sum (fun (s : Analyzer.stats) -> s.memo_lookups_nobounds))
    gcd_stats.Memo_table.lookups;
  Alcotest.(check int) "per-call gcd hits sum to the lifetime counter"
    (sum (fun (s : Analyzer.stats) -> s.memo_hits_nobounds))
    gcd_stats.Memo_table.hits;
  (* Lockstep sessions end with identical lifetime statistics. *)
  let gcd2, full2 = Analyzer.session_table_stats s2 in
  Alcotest.(check int) "lifetime full lookups equal across sessions"
    full_stats.Memo_table.lookups full2.Memo_table.lookups;
  Alcotest.(check int) "lifetime full entries equal across sessions"
    full_stats.Memo_table.size full2.Memo_table.size;
  Alcotest.(check int) "lifetime gcd hits equal across sessions"
    gcd_stats.Memo_table.hits gcd2.Memo_table.hits

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "analyzer"
    [
      ( "paper-examples",
        [
          Alcotest.test_case "intro independent" `Quick test_intro_independent;
          Alcotest.test_case "intro dependent" `Quick test_intro_dependent;
          Alcotest.test_case "intro plain mode" `Quick test_intro_plain_mode;
          Alcotest.test_case "coupled svpc (s3.2)" `Quick test_coupled_svpc_example;
          Alcotest.test_case "write 2i (s6)" `Quick test_section6_write_2i;
          Alcotest.test_case "constant subscripts" `Quick test_constant_subscripts;
          Alcotest.test_case "symbolic (s8)" `Quick test_symbolic_section8;
          Alcotest.test_case "symbolic exact independence" `Quick
            test_symbolic_exact_independence;
          Alcotest.test_case "symbolic versioning" `Quick test_symbolic_versioning;
          Alcotest.test_case "distance not constant (s6)" `Quick
            test_distance_not_constant;
          Alcotest.test_case "control flow conservative" `Quick
            test_control_flow_conservative;
          Alcotest.test_case "parallel loops client" `Quick test_parallel_loops_client;
          Alcotest.test_case "self pair output dependence" `Quick
            test_self_pair_output_dependence;
          Alcotest.test_case "triangular bounds" `Quick test_triangular_bounds;
        ] );
      ( "sessions",
        [
          Alcotest.test_case "interleaved sessions keep per-call deltas" `Quick
            test_interleaved_session_stats;
        ] );
      ( "oracle-properties",
        [
          qt prop_analyzer_exact;
          qt prop_memo_transparent;
          qt prop_pruning_sound;
          qt prop_separable_exact;
          qt prop_symbolic_sound_for_all_inputs;
          qt prop_plain_verdict_matches_oracle;
        ] );
    ]
