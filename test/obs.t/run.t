Observability: the metrics registry, leveled logging, and the Chrome
trace export.

  $ cat > loop.dd <<'EOF'
  > for i = 1 to 6 do
  >   a[i] = a[i + 6] + a[2 * i]
  > end
  > EOF

The metrics subcommand analyzes its files and prints the registry:
deterministic integer counters, one per line, sorted by name.

  $ ddtest metrics loop.dd | grep -E '^counter (analyzer|cascade)\.'
  counter analyzer.pairs 3
  counter analyzer.queries 3
  counter cascade.decided.acyclic 0
  counter cascade.decided.fourier 0
  counter cascade.decided.loop_residue 0
  counter cascade.decided.svpc 7
  counter cascade.runs 7
  counter cascade.verdict.dependent 4
  counter cascade.verdict.exhausted 0
  counter cascade.verdict.independent 3
  counter cascade.verdict.unknown 0

Per-test counters mirror the cascade: seven runs, all decided by
SVPC — six from the direction-vector analysis plus one replayed by
the linter to derive the carried edge's witness iteration pair.

  $ ddtest metrics loop.dd | grep -E '^counter test\.(gcd|svpc)\.'
  counter test.gcd.calls 4
  counter test.gcd.independent 0
  counter test.svpc.calls 7
  counter test.svpc.independent 3

The metrics run also classifies every dependence and loop (the lint
subsystem): this loop's one carried edge is an anti dependence, so the
loop is vectorizable but not DOALL.

  $ ddtest metrics loop.dd | grep -E '^counter lint\.'
  counter lint.deps.anti 1
  counter lint.deps.flow 0
  counter lint.deps.input 0
  counter lint.deps.output 0
  counter lint.findings.races 0
  counter lint.findings.unproven 0
  counter lint.loops.doall 0
  counter lint.loops.reduction 0
  counter lint.loops.serial 0
  counter lint.loops.vectorizable 1

The JSON form is the same object the batch driver embeds:

  $ ddtest metrics loop.dd --format json | head -c 60
  {"counters":{"admin.errors":0,"admin.requests":0,"analyzer.p

  $ ddtest batch loop.dd --format json --jobs 2 | grep -c '"metrics":'
  1

--trace-out writes a Chrome trace_event file (one "M" metadata record
per track, spans for the cascade and each analyzed pair):

  $ ddtest analyze loop.dd --trace-out trace.json > /dev/null
  $ head -c 15 trace.json
  {"traceEvents":
  $ grep -c '"ph":"M"' trace.json
  1
  $ grep -o '"name":"cascade"' trace.json | sort -u
  "name":"cascade"
  $ grep -o '"name":"pair"' trace.json | sort -u
  "name":"pair"

Diagnostics go through one leveled stderr logger: warnings show by
default, --log-level quiet silences them, and machine-readable stdout
is never polluted either way.

  $ cat > warn.dd <<'EOF'
  > for i = 1 to 10 do
  >   a[i] = b[j] + 1
  > end
  > EOF

  $ ddtest analyze warn.dd
  warning: 2:12: scalar 'j' used before being defined
  a[self]  2:3 x 2:3:  independent

  $ ddtest analyze warn.dd --log-level quiet
  a[self]  2:3 x 2:3:  independent
