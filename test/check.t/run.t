Certificate-checked verdicts: ddtest check replays the analysis and
validates every verdict's evidence with the trusted checker.

A clean program: every verdict is certified, nothing to report.

  $ cat > clean.dd <<'EOF'
  > for i = 1 to 9 do
  >   a[2 * i] = a[i] + 1
  > end
  > EOF

  $ ddtest check clean.dd
  OK: 2 pairs, 3 certificates checked; 0 errors, 0 warnings

Corrupting every certificate before checking (--corrupt) is the
checker's own negative test: each mangled witness and certificate must
be rejected with a located diagnostic, and the exit code is 2.

  $ ddtest check --corrupt clean.dd
  clean.dd:2:3: error: [bad-certificate] array 'a': direction-obligation independence certificate rejected: hypothesis index -1 out of range (5 rows)
  clean.dd:2:3: error: [bad-certificate] array 'a': direction-obligation independence certificate rejected: hypothesis index -1 out of range (5 rows)
  clean.dd:2:3: error: [bad-witness] array 'a': dependence witness rejected: witness has 1 entries, problem has 2 variables (second reference at 2:14)
  FAIL: 2 pairs, 3 certificates checked; 3 errors, 0 warnings
  [2]

The same diagnostics as JSON, for tooling:

  $ ddtest check --corrupt --format json clean.dd | tr -d ' \n' | head -c 200
  {"file":"clean.dd","pairs":2,"certificates":3,"errors":3,"warnings":0,"diagnostics":[{"severity":"error","code":"bad-certificate","line":2,"col":3,"array":"a","message":"array'a':direction-obligationi
  $ ddtest check --corrupt --format json clean.dd > /dev/null
  [2]

Conservative verdicts are explained, not certified: a non-affine
subscript warns and assumes dependence.

  $ cat > nonaffine.dd <<'EOF'
  > for i = 1 to 10 do
  >   a[i * i] = a[i] + 1
  > end
  > EOF

  $ ddtest check nonaffine.dd
  nonaffine.dd:2:3: warning: [non-affine] subscript 0 of array 'a' is not affine: the pair is assumed dependent without testing
  nonaffine.dd:2:3: warning: [non-affine] subscript 0 of array 'a' is not affine: the pair is assumed dependent without testing (second reference at 2:14)
  OK: 2 pairs, 0 certificates checked; 0 errors, 2 warnings

A loop bound the analysis cannot bound (here: symbolic mode off) warns
on dependent pairs that it leaves part of the space unconstrained.

  $ cat > symb.dd <<'EOF'
  > read(n)
  > for i = 1 to n do
  >   a[i + 1] = a[i] + 1
  > end
  > EOF

  $ ddtest check --symbolic false symb.dd
  symb.dd:3:3: warning: [symbolic-bound] bound of loop 'i' is not affine: the dependence system leaves its range unconstrained, so this verdict may be conservative (second reference at 3:14)
  OK: 2 pairs, 3 certificates checked; 0 errors, 1 warnings

With symbolic terms on (the default) the same program is handled
exactly and silently:

  $ ddtest check symb.dd
  OK: 2 pairs, 3 certificates checked; 0 errors, 0 warnings

Verification rides along with analyze and batch via --verify:

  $ ddtest analyze clean.dd --verify
  a[self]  2:3 x 2:3:  independent
  a[pair]  2:3 x 2:14:  dependent directions: (<)[flow]
  
  -- verification --
  OK: 2 pairs, 3 certificates checked; 0 errors, 0 warnings


  $ ddtest batch --verify --jobs 2 clean.dd symb.dd | grep -E '^(==|OK|FAIL)'
  == clean.dd ==
  OK: 2 pairs, 3 certificates checked; 0 errors, 0 warnings
  == symb.dd ==
  OK: 2 pairs, 3 certificates checked; 0 errors, 0 warnings
  == corpus: 2 programs ==

The synthetic PERFECT corpus is fully certified (the names come from
perfect --list):

  $ for n in $(ddtest perfect --list | head -3); do
  >   ddtest perfect $n | ddtest check - | tail -1 | cut -d: -f1
  > done
  OK
  OK
  OK
