(* The durable memo store: append/replay round-trips, the
   cache-integrity invariant (digest + fingerprint + version gate every
   served record), torn-tail recovery at every byte offset of the final
   record, rejection (not repair) of mid-file corruption, quarantine of
   fingerprint-mismatched files, and warm-restart equivalence of whole
   analyzer runs through the durable cache. *)

open Dda_lang
open Dda_core
open Dda_cache

let temp_path () =
  let p = Filename.temp_file "ddcache" ".bin" in
  Sys.remove p;
  p

let cleanup p =
  List.iter
    (fun f -> if Sys.file_exists f then Sys.remove f)
    [ p; p ^ ".rejected" ]

let with_path f =
  let p = temp_path () in
  Fun.protect ~finally:(fun () -> cleanup p) (fun () -> f p)

let config = Analyzer.default_config

(* Collecting loaders for [Store.open_store]. *)
let collectors () =
  let gcds = ref [] and fulls = ref [] in
  let gcd k v = gcds := (k, v) :: !gcds in
  let full k v = fulls := (k, v) :: !fulls in
  (gcds, fulls, gcd, full)

let open_collect ?fsync ~path ?(config = config) () =
  let gcds, fulls, gcd, full = collectors () in
  let s, r = Store.open_store ?fsync ~path ~config ~gcd ~full () in
  (s, r, gcds, fulls)

let key l = Array.of_list l

let some_gcd =
  Gcd_test.Independent
    {
      Cert.multipliers = [| Dda_numeric.Zint.of_int 1 |];
      modulus = Dda_numeric.Zint.of_int 2;
    }

let other_gcd =
  Gcd_test.Independent
    {
      Cert.multipliers = [| Dda_numeric.Zint.of_int 3 |];
      modulus = Dda_numeric.Zint.of_int 5;
    }

let some_full = Analyzer.Assumed_dependent

let file_contents path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Parse the store's framing in the test, independently of the
   implementation: header is magic + 16-byte fingerprint, each record
   is [4-byte BE length][16-byte digest][payload]. Returns the byte
   offset where each record starts, plus the total length. *)
let record_offsets path =
  let s = file_contents path in
  let header_len = String.length "%DDACACHE1\n" + 16 in
  let rec go off acc =
    if off >= String.length s then List.rev acc
    else
      let len =
        Int32.to_int (String.get_int32_be s off)
      in
      go (off + 4 + 16 + len) (off :: acc)
  in
  (go header_len [], String.length s)

(* ------------------------------------------------------------------ *)
(* Round trip                                                          *)
(* ------------------------------------------------------------------ *)

let test_roundtrip () =
  with_path (fun path ->
      let s, r, _, _ = open_collect ~path () in
      Alcotest.(check bool) "fresh" true r.Store.fresh;
      Store.append_gcd s (key [ 1; 2; 3 ]) some_gcd;
      Store.append_full s (key [ 4; 5 ]) some_full;
      Store.append_gcd s (key [ 6 ]) other_gcd;
      Alcotest.(check int) "appends counted" 3 (Store.appends s);
      Store.close s;
      let s2, r2, gcds, fulls = open_collect ~path () in
      Store.close s2;
      Alcotest.(check bool) "not fresh" false r2.Store.fresh;
      Alcotest.(check int) "3 records replayed" 3 r2.Store.records;
      Alcotest.(check int) "nothing dropped" 0 r2.Store.dropped_bytes;
      Alcotest.(check int) "2 gcd entries" 2 (List.length !gcds);
      Alcotest.(check int) "1 full entry" 1 (List.length !fulls);
      let g = List.assoc (key [ 1; 2; 3 ]) !gcds in
      Alcotest.(check bool) "gcd value survives" true (g = some_gcd))

let test_close_idempotent () =
  with_path (fun path ->
      let s, _, _, _ = open_collect ~path () in
      Store.close s;
      Store.close s)

(* ------------------------------------------------------------------ *)
(* Torn tails: truncation at every byte offset of the final record     *)
(* ------------------------------------------------------------------ *)

let test_torn_tail_every_offset () =
  with_path (fun path ->
      let s, _, _, _ = open_collect ~path () in
      Store.append_gcd s (key [ 1; 2; 3 ]) some_gcd;
      Store.append_full s (key [ 4; 5; 6; 7 ]) some_full;
      Store.append_gcd s (key [ 8; 9 ]) other_gcd;
      Store.close s;
      let offsets, total = record_offsets path in
      Alcotest.(check int) "3 records framed" 3 (List.length offsets);
      let last_start = List.nth offsets 2 in
      let original = file_contents path in
      (* Truncating anywhere inside the final record must recover the
         2-record prefix and drop exactly the torn bytes — at every
         single offset, frame header and payload alike. *)
      for cut = last_start to total - 1 do
        let oc = open_out_bin path in
        output_string oc (String.sub original 0 cut);
        close_out oc;
        let s, r, gcds, fulls = open_collect ~path () in
        Store.close s;
        if r.Store.records <> 2 then
          Alcotest.failf "cut at %d: recovered %d records, want 2" cut
            r.Store.records;
        if r.Store.dropped_bytes <> cut - last_start then
          Alcotest.failf "cut at %d: dropped %d bytes, want %d" cut
            r.Store.dropped_bytes (cut - last_start);
        Alcotest.(check int) "prefix gcd survives" 1 (List.length !gcds);
        Alcotest.(check int) "prefix full survives" 1 (List.length !fulls);
        (* Recovery truncated the file: a second open is clean. *)
        let s, r2, _, _ = open_collect ~path () in
        Store.close s;
        if r2.Store.dropped_bytes <> 0 then
          Alcotest.failf "cut at %d: second open still dropped %d bytes" cut
            r2.Store.dropped_bytes;
        (* Restore the full file for the next offset. *)
        let oc = open_out_bin path in
        output_string oc original;
        close_out oc
      done)

let test_append_after_recovery () =
  with_path (fun path ->
      let s, _, _, _ = open_collect ~path () in
      Store.append_gcd s (key [ 1 ]) some_gcd;
      Store.append_gcd s (key [ 2 ]) some_gcd;
      Store.close s;
      let original = file_contents path in
      (* Tear the second record in half, reopen (truncates), append a
         fresh record: the file must read back as records 1 and 3. *)
      let offsets, total = record_offsets path in
      let cut = (List.nth offsets 1 + total) / 2 in
      let oc = open_out_bin path in
      output_string oc (String.sub original 0 cut);
      close_out oc;
      let s, r, _, _ = open_collect ~path () in
      Alcotest.(check int) "one record recovered" 1 r.Store.records;
      Store.append_full s (key [ 3 ]) some_full;
      Store.close s;
      let s, r2, gcds, fulls = open_collect ~path () in
      Store.close s;
      Alcotest.(check int) "two records after repair+append" 2 r2.Store.records;
      Alcotest.(check int) "no damage" 0 r2.Store.dropped_bytes;
      Alcotest.(check bool) "gcd 1 present" true (List.mem_assoc (key [ 1 ]) !gcds);
      Alcotest.(check bool) "full 3 present" true (List.mem_assoc (key [ 3 ]) !fulls))

(* ------------------------------------------------------------------ *)
(* Corruption and fingerprint rejection                                *)
(* ------------------------------------------------------------------ *)

let test_midfile_corruption_drops_suffix () =
  with_path (fun path ->
      let s, _, _, _ = open_collect ~path () in
      Store.append_gcd s (key [ 1 ]) some_gcd;
      Store.append_gcd s (key [ 2 ]) some_gcd;
      Store.append_gcd s (key [ 3 ]) some_gcd;
      Store.close s;
      let original = file_contents path in
      let offsets, _ = record_offsets path in
      (* Flip one payload byte of record 1 (offset +20 skips its
         frame): its digest check fails, so it and record 2 behind it
         are dropped; record 0 survives. A wrong byte is never served. *)
      let pos = List.nth offsets 1 + 20 in
      let corrupted = Bytes.of_string original in
      Bytes.set corrupted pos
        (Char.chr (Char.code (Bytes.get corrupted pos) lxor 0xFF));
      let oc = open_out_bin path in
      output_bytes oc corrupted;
      close_out oc;
      let s, r, gcds, _ = open_collect ~path () in
      Store.close s;
      Alcotest.(check int) "only the intact prefix" 1 r.Store.records;
      Alcotest.(check bool) "record 0 survives" true
        (List.mem_assoc (key [ 1 ]) !gcds);
      Alcotest.(check bool) "suffix dropped" true (r.Store.dropped_bytes > 0))

let test_fingerprint_mismatch_quarantines () =
  with_path (fun path ->
      let s, _, _, _ = open_collect ~path () in
      Store.append_gcd s (key [ 1 ]) some_gcd;
      Store.close s;
      let other = { config with Analyzer.symbolic = not config.Analyzer.symbolic } in
      Alcotest.(check bool) "fingerprints differ" false
        (String.equal (Store.fingerprint config) (Store.fingerprint other));
      let s2, r, gcds, _ = open_collect ~path ~config:other () in
      Store.close s2;
      (match r.Store.reset with
       | Some _ -> ()
       | None -> Alcotest.fail "expected a reset");
      Alcotest.(check bool) "cold start" true r.Store.fresh;
      Alcotest.(check int) "nothing served" 0 (List.length !gcds);
      Alcotest.(check bool) "old file preserved for inspection" true
        (Sys.file_exists (path ^ ".rejected")))

let test_alien_file_quarantines () =
  with_path (fun path ->
      let oc = open_out_bin path in
      output_string oc "this is not a cache file at all\n";
      close_out oc;
      let s, r, _, _ = open_collect ~path () in
      Store.close s;
      (match r.Store.reset with
       | Some reason ->
         Alcotest.(check bool) "reason mentions magic" true
           (String.length reason > 0)
       | None -> Alcotest.fail "expected a reset");
      Alcotest.(check bool) ".rejected kept" true
        (Sys.file_exists (path ^ ".rejected")))

(* ------------------------------------------------------------------ *)
(* Compaction                                                          *)
(* ------------------------------------------------------------------ *)

let test_compact_drops_duplicates () =
  with_path (fun path ->
      let s, _, _, _ = open_collect ~path () in
      (* Duplicate appends, as racing domains would produce, plus a
         superseded binding for [1;2;3]: compaction must keep one
         record per key, the last binding winning. *)
      Store.append_gcd s (key [ 1; 2; 3 ]) some_gcd;
      Store.append_gcd s (key [ 1; 2; 3 ]) some_gcd;
      Store.append_gcd s (key [ 1; 2; 3 ]) other_gcd;
      Store.append_full s (key [ 4; 5 ]) some_full;
      Store.append_full s (key [ 4; 5 ]) some_full;
      Store.append_gcd s (key [ 6 ]) other_gcd;
      Store.close s;
      let before_len = String.length (file_contents path) in
      let c = Store.compact ~path ~config () in
      Alcotest.(check int) "6 records before" 6 c.Store.before_records;
      Alcotest.(check int) "3 records after" 3 c.Store.after_records;
      Alcotest.(check int) "before_bytes" before_len c.Store.before_bytes;
      Alcotest.(check int) "no damage" 0 c.Store.damaged_bytes;
      Alcotest.(check bool) "file shrank" true
        (c.Store.after_bytes < c.Store.before_bytes);
      (* The header survives byte for byte — same magic, same
         fingerprint — so a reopen under the same config replays. *)
      let header_len = String.length "%DDACACHE1\n" + 16 in
      Alcotest.(check string) "header preserved"
        (String.sub (file_contents path) 0 header_len)
        ("%DDACACHE1\n" ^ Store.fingerprint config);
      let s2, r, gcds, fulls = open_collect ~path () in
      Store.close s2;
      Alcotest.(check int) "replay sees 3" 3 r.Store.records;
      Alcotest.(check int) "no drops" 0 r.Store.dropped_bytes;
      Alcotest.(check int) "2 gcd keys" 2 (List.length !gcds);
      Alcotest.(check int) "1 full key" 1 (List.length !fulls);
      Alcotest.(check bool) "last binding won" true
        (List.assoc (key [ 1; 2; 3 ]) !gcds = other_gcd))

let test_compact_drops_torn_tail () =
  with_path (fun path ->
      let s, _, _, _ = open_collect ~path () in
      Store.append_gcd s (key [ 1 ]) some_gcd;
      Store.append_gcd s (key [ 2 ]) other_gcd;
      Store.close s;
      let original = file_contents path in
      let offsets, total = record_offsets path in
      let cut = (List.nth offsets 1 + total) / 2 in
      let oc = open_out_bin path in
      output_string oc (String.sub original 0 cut);
      close_out oc;
      let c = Store.compact ~path ~config () in
      Alcotest.(check int) "only the intact record" 1 c.Store.before_records;
      Alcotest.(check int) "kept as one" 1 c.Store.after_records;
      Alcotest.(check int) "torn bytes reported"
        (cut - List.nth offsets 1)
        c.Store.damaged_bytes;
      let s2, r, gcds, _ = open_collect ~path () in
      Store.close s2;
      Alcotest.(check int) "clean after compaction" 0 r.Store.dropped_bytes;
      Alcotest.(check bool) "record 1 survives" true
        (List.mem_assoc (key [ 1 ]) !gcds))

let test_compact_refuses_mismatch () =
  with_path (fun path ->
      let s, _, _, _ = open_collect ~path () in
      Store.append_gcd s (key [ 1 ]) some_gcd;
      Store.close s;
      let before = file_contents path in
      let other = { config with Analyzer.symbolic = not config.Analyzer.symbolic } in
      (match Store.compact ~path ~config:other () with
       | _ -> Alcotest.fail "expected Failure"
       | exception Failure m ->
         Alcotest.(check bool) "mentions fingerprint" true
           (String.length m > 0));
      (* Unlike open_store's quarantine, the file is left untouched. *)
      Alcotest.(check string) "file untouched" before (file_contents path);
      Alcotest.(check bool) "no .rejected" false
        (Sys.file_exists (path ^ ".rejected"));
      Alcotest.(check bool) "no .compact left behind" false
        (Sys.file_exists (path ^ ".compact")))

let test_compact_missing_file () =
  with_path (fun path ->
      match Store.compact ~path ~config () with
      | _ -> Alcotest.fail "expected Failure"
      | exception Failure _ -> ())

(* ------------------------------------------------------------------ *)
(* The durable cache end to end through the analyzer                   *)
(* ------------------------------------------------------------------ *)

let program_src =
  "for i = 1 to 50 do\n\
  \  a[i] = a[i-1] + b[i]\n\
  \  b[i+1] = a[i] + 1\n\
   end\n"

let analyze_with cache =
  Analyzer.analyze ~config ~cache (Parser.parse_program program_src)

let test_warm_restart_equal_reports () =
  with_path (fun path ->
      let d, r = Durable.create ~path ~config () in
      Alcotest.(check bool) "cold open" true (Option.get r).Store.fresh;
      let cold = analyze_with (Durable.cache d) in
      Durable.close d;
      Alcotest.(check bool) "something was appended" true
        (Durable.store_appends d > 0);
      (* Reopen: the tables must come back and a rerun must produce the
         same verdicts purely from cache hits. *)
      let d2, r2 = Durable.create ~path ~config () in
      let rec2 = Option.get r2 in
      Alcotest.(check int) "every append replayed"
        (Durable.store_appends d)
        rec2.Store.records;
      let warm = analyze_with (Durable.cache d2) in
      Alcotest.(check int) "no new appends warm" 0 (Durable.store_appends d2);
      Durable.close d2;
      Alcotest.(check bool) "pair reports identical" true
        (cold.Analyzer.pair_reports = warm.Analyzer.pair_reports);
      let s = warm.Analyzer.stats in
      Alcotest.(check int) "warm run misses nothing"
        s.Analyzer.memo_lookups_full s.Analyzer.memo_hits_full)

let test_memory_durable_agree () =
  with_path (fun path ->
      let d, _ = Durable.create ~path ~config () in
      let durable = analyze_with (Durable.cache d) in
      Durable.close d;
      let memory = analyze_with (Analyzer.memory_cache ()) in
      Alcotest.(check bool) "same pair reports" true
        (durable.Analyzer.pair_reports = memory.Analyzer.pair_reports);
      Alcotest.(check bool) "same stats" true
        (Analyzer.stats_to_list durable.Analyzer.stats
         = Analyzer.stats_to_list memory.Analyzer.stats))

let test_shared_across_domains () =
  with_path (fun path ->
      let d, _ = Durable.create ~path ~config () in
      let cache = Durable.cache d in
      let domains =
        List.init 4 (fun _ ->
            Domain.spawn (fun () -> analyze_with cache))
      in
      let reports = List.map Domain.join domains in
      Durable.close d;
      let first = List.hd reports in
      List.iter
        (fun r ->
          Alcotest.(check bool) "all domains agree" true
            (r.Analyzer.pair_reports = first.Analyzer.pair_reports))
        reports;
      (* Replay must land every appended record, duplicates included. *)
      let d2, r2 = Durable.create ~path ~config () in
      Durable.close d2;
      Alcotest.(check int) "replay equals appends"
        (Durable.store_appends d)
        (Option.get r2).Store.records)

let test_compute_exception_stores_nothing () =
  with_path (fun path ->
      let d, _ = Durable.create ~path ~config () in
      let cache = Durable.cache d in
      (try
         ignore (cache.Analyzer.find_or_add_gcd (key [ 9; 9 ]) (fun () -> failwith "boom"))
       with Failure _ -> ());
      let g, f = Durable.table_sizes d in
      Alcotest.(check int) "no gcd entry" 0 g;
      Alcotest.(check int) "no full entry" 0 f;
      Alcotest.(check int) "no append" 0 (Durable.store_appends d);
      (* The key is still computable afterwards. *)
      let v, hit = cache.Analyzer.find_or_add_gcd (key [ 9; 9 ]) (fun () -> some_gcd) in
      Durable.close d;
      Alcotest.(check bool) "miss then computed" false hit;
      Alcotest.(check bool) "value delivered" true (v = some_gcd))

let () =
  Alcotest.run "cache"
    [
      ( "store",
        [
          Alcotest.test_case "append/replay round trip" `Quick test_roundtrip;
          Alcotest.test_case "close is idempotent" `Quick test_close_idempotent;
          Alcotest.test_case "torn tail recovers at every byte offset" `Quick
            test_torn_tail_every_offset;
          Alcotest.test_case "append after recovery" `Quick
            test_append_after_recovery;
          Alcotest.test_case "mid-file corruption drops the suffix" `Quick
            test_midfile_corruption_drops_suffix;
          Alcotest.test_case "fingerprint mismatch quarantines the file" `Quick
            test_fingerprint_mismatch_quarantines;
          Alcotest.test_case "alien file quarantines" `Quick
            test_alien_file_quarantines;
        ] );
      ( "compact",
        [
          Alcotest.test_case "drops duplicates, keeps the last binding" `Quick
            test_compact_drops_duplicates;
          Alcotest.test_case "drops a torn tail like replay would" `Quick
            test_compact_drops_torn_tail;
          Alcotest.test_case "refuses a fingerprint mismatch untouched" `Quick
            test_compact_refuses_mismatch;
          Alcotest.test_case "missing file fails cleanly" `Quick
            test_compact_missing_file;
        ] );
      ( "durable",
        [
          Alcotest.test_case "warm restart serves identical reports" `Quick
            test_warm_restart_equal_reports;
          Alcotest.test_case "durable and memory caches agree" `Quick
            test_memory_durable_agree;
          Alcotest.test_case "shared across four domains" `Quick
            test_shared_across_domains;
          Alcotest.test_case "a raising compute stores nothing" `Quick
            test_compute_exception_stores_nothing;
        ] );
    ]
