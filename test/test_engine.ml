(* The parallel batch engine: the domain pool's scheduling and failure
   behavior, the memo/stats merge APIs, the paper's hash function, and
   the batch driver's determinism guarantee — analyzing a corpus on N
   domains is byte-identical to the sequential path for every N. *)

open Dda_core
open Dda_engine

(* ------------------------------------------------------------------ *)
(* Pool                                                                *)
(* ------------------------------------------------------------------ *)

let test_pool_basic () =
  let pool = Pool.create ~jobs:4 in
  Alcotest.(check int) "size" 4 (Pool.size pool);
  Alcotest.(check int) "run" 42 (Pool.run pool (fun () -> 6 * 7));
  Pool.shutdown pool

let test_pool_many_tasks () =
  (* Hundreds of tiny tasks all complete, and [map] restores input
     order whatever order the workers finished in. *)
  let pool = Pool.create ~jobs:4 in
  let inputs = List.init 500 Fun.id in
  let results = Pool.map pool (fun i -> i * i) inputs in
  Pool.shutdown pool;
  Alcotest.(check (list int)) "results in input order"
    (List.map (fun i -> i * i) inputs)
    results

let test_pool_exception_propagates () =
  let pool = Pool.create ~jobs:2 in
  let boom = Pool.submit pool (fun () -> failwith "boom") in
  let fine = Pool.submit pool (fun () -> 1) in
  Alcotest.check_raises "task exception reaches the caller" (Failure "boom")
    (fun () -> ignore (Pool.await boom));
  Alcotest.(check int) "other task unaffected" 1 (Pool.await fine);
  (* The worker that ran the failing task survives: the pool still
     drains new work. *)
  Alcotest.(check (list int)) "pool usable after a failure" [ 0; 2; 4 ]
    (Pool.map pool (fun i -> 2 * i) [ 0; 1; 2 ]);
  Pool.shutdown pool

let test_pool_jobs1_sequential () =
  (* A single worker pops a FIFO queue: tasks run in submission order. *)
  let pool = Pool.create ~jobs:1 in
  let log = ref [] in
  let promises =
    List.init 100 (fun i ->
        Pool.submit pool (fun () ->
            log := i :: !log;
            i))
  in
  let results = List.map Pool.await promises in
  Pool.shutdown pool;
  Alcotest.(check (list int)) "results" (List.init 100 Fun.id) results;
  Alcotest.(check (list int)) "executed in submission order"
    (List.init 100 Fun.id)
    (List.rev !log)

let test_pool_shutdown () =
  let pool = Pool.create ~jobs:3 in
  (* Queued tasks finish before the workers are joined. *)
  let promises = List.init 50 (fun i -> Pool.submit pool (fun () -> i + 1)) in
  Pool.shutdown pool;
  Alcotest.(check (list int)) "queued work completed before join"
    (List.init 50 (fun i -> i + 1))
    (List.map Pool.await promises);
  Pool.shutdown pool (* idempotent *);
  Alcotest.check_raises "submit after shutdown"
    (Invalid_argument "Pool.submit: the pool is shut down") (fun () ->
      ignore (Pool.submit pool (fun () -> ())));
  Alcotest.check_raises "jobs must be positive"
    (Invalid_argument "Pool.create: jobs must be >= 1") (fun () ->
      ignore (Pool.create ~jobs:0))

let test_pool_stress_mixed_failures () =
  (* A pool bombarded with interleaved failing and succeeding tasks
     keeps every promise straight. *)
  let pool = Pool.create ~jobs:4 in
  let promises =
    List.init 300 (fun i ->
        (i, Pool.submit pool (fun () -> if i mod 7 = 0 then failwith "die" else i)))
  in
  List.iter
    (fun (i, p) ->
       if i mod 7 = 0 then
         Alcotest.check_raises (Printf.sprintf "task %d fails" i) (Failure "die")
           (fun () -> ignore (Pool.await p))
       else Alcotest.(check int) (Printf.sprintf "task %d" i) i (Pool.await p))
    promises;
  Pool.shutdown pool

(* ------------------------------------------------------------------ *)
(* Memo_table merge and the paper's hash                               *)
(* ------------------------------------------------------------------ *)

let test_memo_merge () =
  let a = Memo_table.create () and b = Memo_table.create () in
  Memo_table.add a [| 1; 2 |] "a12";
  Memo_table.add a [| 3 |] "a3";
  Memo_table.add b [| 1; 2 |] "b12";
  Memo_table.add b [| 4; 5 |] "b45";
  ignore (Memo_table.find a [| 1; 2 |]);
  ignore (Memo_table.find a [| 9 |]);
  ignore (Memo_table.find b [| 4; 5 |]);
  Memo_table.merge_into ~into:a b;
  Alcotest.(check int) "union size" 3 (Memo_table.length a);
  Alcotest.(check int) "lookups summed" 3 (Memo_table.lookups a);
  Alcotest.(check int) "hits summed" 2 (Memo_table.hits a);
  Alcotest.(check (option string)) "existing binding wins" (Some "a12")
    (Memo_table.find a [| 1; 2 |]);
  Alcotest.(check (option string)) "absorbed binding present" (Some "b45")
    (Memo_table.find a [| 4; 5 |]);
  Alcotest.(check int) "absorbed table untouched" 2 (Memo_table.length b);
  Alcotest.check_raises "self-merge refused"
    (Invalid_argument "Memo_table.merge_into: a table cannot absorb itself")
    (fun () -> Memo_table.merge_into ~into:a a)

let test_memo_merge_grows () =
  (* Absorbing a large table forces rehashing mid-merge; every key must
     survive. *)
  let a = Memo_table.create ~initial_buckets:2 () in
  let b = Memo_table.create () in
  for i = 0 to 99 do
    Memo_table.add b [| i; i + 1 |] i
  done;
  Memo_table.add a [| 1000 |] (-1);
  Memo_table.merge_into ~into:a b;
  Alcotest.(check int) "all keys present" 101 (Memo_table.length a);
  let ok = ref true in
  for i = 0 to 99 do
    if Memo_table.find a [| i; i + 1 |] <> Some i then ok := false
  done;
  Alcotest.(check bool) "all retrievable after merge rehash" true !ok

let prop_hash_formula =
  (* hash_key agrees with the paper's h(x) = size(x) + sum 2^i x_i on
     every key, including permuted variants of the same multiset (the
     formula is position-dependent by design, so a permutation hashes
     through the same formula, not to the same value). *)
  let formula key =
    (* Independent rendering of h(x) = size(x) + sum 2^i x_i, with the
       same native wrapping arithmetic the table uses (2^i wraps to 0
       past the word size, so long keys stay deterministic too). *)
    let h, _ =
      List.fold_left
        (fun (h, p) x -> (h + (p * x), p * 2))
        (List.length key, 1)
        key
    in
    h land max_int
  in
  QCheck.Test.make ~name:"hash_key matches the paper's formula" ~count:500
    QCheck.(pair (list (int_range (-8) 8)) (list small_int))
    (fun (key, shuffle_seed) ->
       (* A cheap deterministic permutation driven by the second list. *)
       let permuted =
         List.map snd
           (List.sort compare
              (List.mapi
                 (fun i x ->
                    ((List.nth_opt shuffle_seed (i mod max 1 (List.length shuffle_seed))
                      |> Option.value ~default:0)
                     + i * 7919 mod 101, x))
                 key))
       in
       Memo_table.hash_key (Array.of_list key) = formula key
       && Memo_table.hash_key (Array.of_list permuted) = formula permuted)

(* ------------------------------------------------------------------ *)
(* Sharded_table                                                       *)
(* ------------------------------------------------------------------ *)

let test_sharded_basic () =
  let t = Sharded_table.create ~stripes:5 () in
  Alcotest.(check int) "stripes rounded up to a power of two" 8
    (Sharded_table.stripes t);
  let v, hit = Sharded_table.find_or_add t [| 1; 2 |] (fun () -> "a") in
  Alcotest.(check (pair string bool)) "miss computes" ("a", false) (v, hit);
  let v, hit = Sharded_table.find_or_add t [| 1; 2 |] (fun () -> "BUG") in
  Alcotest.(check (pair string bool)) "hit returns stored" ("a", true) (v, hit);
  Alcotest.(check (option string)) "find" (Some "a")
    (Sharded_table.find t [| 1; 2 |]);
  Sharded_table.add t [| 1; 2 |] "b";
  Alcotest.(check (option string)) "add replaces" (Some "b")
    (Sharded_table.find t [| 1; 2 |]);
  Alcotest.(check int) "replace keeps one binding" 1 (Sharded_table.length t);
  Alcotest.check_raises "raising compute stores nothing" (Failure "boom")
    (fun () -> ignore (Sharded_table.find_or_add t [| 7 |] (fun () -> failwith "boom")));
  Alcotest.(check (option string)) "nothing cached after raise" None
    (Sharded_table.find t [| 7 |])

let test_sharded_stats_aggregate () =
  let t = Sharded_table.create ~stripes:4 () in
  for i = 0 to 199 do
    ignore (Sharded_table.find_or_add t [| i; i * 3 |] (fun () -> i))
  done;
  for i = 0 to 99 do
    ignore (Sharded_table.find_or_add t [| i; i * 3 |] (fun () -> -1))
  done;
  let st = Sharded_table.stats t in
  Alcotest.(check int) "size sums stripes" 200 st.Memo_table.size;
  Alcotest.(check int) "size agrees with length" (Sharded_table.length t)
    st.Memo_table.size;
  Alcotest.(check int) "lookups" 300 st.Memo_table.lookups;
  Alcotest.(check int) "hits" 100 st.Memo_table.hits;
  let seen = ref 0 in
  Sharded_table.iter (fun k v -> if k.(0) = v then incr seen) t;
  Alcotest.(check int) "iter visits every binding" 200 !seen;
  Sharded_table.reset_counters t;
  let st = Sharded_table.stats t in
  Alcotest.(check (pair int int)) "counters reset, bindings kept" (0, 0)
    (st.Memo_table.lookups, st.Memo_table.hits);
  Alcotest.(check int) "bindings kept" 200 (Sharded_table.length t)

let test_sharded_across_domains () =
  (* Four domains hammer one table over an overlapping key space. Every
     lookup must come back with the value the key's compute produces
     (computes are deterministic functions of the key), the final size
     must be the distinct-key count, and the lookup total must be
     jobs-invariant: one count per find_or_add whatever the timing. *)
  let t = Sharded_table.create ~stripes:8 () in
  let domains =
    List.init 4 (fun d ->
        Domain.spawn (fun () ->
            let ok = ref true in
            for round = 0 to 49 do
              for k = 0 to 24 do
                let key = [| k; k * k; (d + round) mod 3 |] in
                let expect = key.(0) + key.(1) + key.(2) in
                let v, _ = Sharded_table.find_or_add t key (fun () -> expect) in
                if v <> expect then ok := false
              done
            done;
            !ok))
  in
  let oks = List.map Domain.join domains in
  Alcotest.(check (list bool)) "every domain saw consistent values"
    [ true; true; true; true ] oks;
  Alcotest.(check int) "distinct keys stored once" (25 * 3)
    (Sharded_table.length t);
  let st = Sharded_table.stats t in
  Alcotest.(check int) "lookup total is jobs-invariant" (4 * 50 * 25)
    st.Memo_table.lookups;
  (* Hits can lag lookups by at most the racy duplicate computes; they
     can never exceed lookups - distinct keys. *)
  Alcotest.(check bool) "hits bounded" true
    (st.Memo_table.hits <= st.Memo_table.lookups - Sharded_table.length t);
  Alcotest.(check bool) "contention counter is sane" true
    (Sharded_table.contended t >= 0)

(* ------------------------------------------------------------------ *)
(* Stats merge                                                         *)
(* ------------------------------------------------------------------ *)

let parse = Dda_lang.Parser.parse_program

let test_merge_stats () =
  let p1 = parse "for i = 1 to 10 do\n  a[i + 1] = a[i] + 1\nend" in
  let p2 = parse "for i = 1 to 8 do\n  b[2 * i] = b[i] + 1\nend" in
  let r1 = Analyzer.analyze p1 and r2 = Analyzer.analyze p2 in
  let merged = Analyzer.fresh_stats () in
  Analyzer.merge_stats ~into:merged r1.Analyzer.stats;
  Analyzer.merge_stats ~into:merged r2.Analyzer.stats;
  let s1 = r1.Analyzer.stats and s2 = r2.Analyzer.stats in
  Alcotest.(check int) "pairs" (s1.Analyzer.pairs + s2.Analyzer.pairs)
    merged.Analyzer.pairs;
  Alcotest.(check int) "dependent"
    (s1.Analyzer.dependent_pairs + s2.Analyzer.dependent_pairs)
    merged.Analyzer.dependent_pairs;
  Alcotest.(check int) "independent"
    (s1.Analyzer.independent_pairs + s2.Analyzer.independent_pairs)
    merged.Analyzer.independent_pairs;
  Alcotest.(check int) "memo lookups"
    (s1.Analyzer.memo_lookups_full + s2.Analyzer.memo_lookups_full)
    merged.Analyzer.memo_lookups_full;
  Alcotest.(check int) "dir counts svpc"
    (s1.Analyzer.dir_counts.Direction.by_test.(0)
     + s2.Analyzer.dir_counts.Direction.by_test.(0))
    merged.Analyzer.dir_counts.Direction.by_test.(0)

let test_merge_sessions () =
  let config = Analyzer.default_config in
  let s1 = Analyzer.create_session ~config () in
  let s2 = Analyzer.create_session ~config () in
  let p1 = parse "for i = 1 to 10 do\n  a[i + 1] = a[i] + 1\nend" in
  let p2 = parse "for i = 1 to 10 do\n  b[i + 1] = b[i] + 2\nend" in
  let p3 = parse "for i = 1 to 8 do\n  c[2 * i] = c[i] + 1\nend" in
  ignore (Analyzer.analyze_session s1 p1);
  ignore (Analyzer.analyze_session s2 p2);
  ignore (Analyzer.analyze_session s2 p3);
  let _, full1 = Analyzer.session_table_sizes s1 in
  Analyzer.merge_sessions ~into:s1 s2;
  let _, full_merged = Analyzer.session_table_sizes s1 in
  (* p1 and p2 key identically (names are not part of the key), so the
     union must be strictly smaller than the sum but at least as large
     as either side. *)
  Alcotest.(check bool) "union at least as large" true (full_merged >= full1);
  let _, full2 = Analyzer.session_table_sizes s2 in
  Alcotest.(check bool) "union deduplicates shared problems" true
    (full_merged < full1 + full2);
  (* A fresh analysis over the merged session hits on both corpora. *)
  let r = Analyzer.analyze_session s1 p3 in
  Alcotest.(check int) "every pair of p3 now hits"
    r.Analyzer.stats.Analyzer.memo_lookups_full
    r.Analyzer.stats.Analyzer.memo_hits_full;
  let cfg2 = { config with Analyzer.symbolic = false } in
  let s3 = Analyzer.create_session ~config:cfg2 () in
  Alcotest.check_raises "config mismatch refused"
    (Invalid_argument
       "Analyzer.merge_sessions: sessions built under different configurations")
    (fun () -> Analyzer.merge_sessions ~into:s1 s3)

(* ------------------------------------------------------------------ *)
(* Batch driver                                                        *)
(* ------------------------------------------------------------------ *)

let test_chunks () =
  Alcotest.(check (list (pair int int))) "even split" [ (0, 2); (2, 4) ]
    (Batch.chunks ~jobs:2 4);
  Alcotest.(check (list (pair int int))) "uneven split" [ (0, 2); (2, 4); (4, 7) ]
    (Batch.chunks ~jobs:3 7);
  Alcotest.(check (list (pair int int))) "more jobs than items"
    [ (0, 0); (0, 1); (1, 1); (1, 2) ]
    (Batch.chunks ~jobs:4 2);
  Alcotest.(check (list (pair int int))) "empty corpus" [ (0, 0) ]
    (Batch.chunks ~jobs:1 0)

let corpus_of_programs programs =
  List.mapi
    (fun i prog -> { Batch.name = Printf.sprintf "p%d" i; program = prog })
    programs

(* Render everything a batch run reports — per-item verdicts, direction
   vectors, distances and merged statistics — to one canonical string. *)
let fingerprint (r : Batch.result) =
  String.concat "\n"
    (List.map
       (fun (a : Batch.analyzed) ->
          a.Batch.name ^ " " ^ Json_out.to_string (Json_out.report a.Batch.report))
       r.Batch.items)
  ^ "\n" ^ Json_out.to_string (Json_out.stats r.Batch.merged)

let test_batch_empty_and_small () =
  let r = Batch.run ~jobs:4 [] in
  Alcotest.(check int) "empty corpus" 0 (List.length r.Batch.items);
  Alcotest.(check int) "no pairs" 0 r.Batch.merged.Analyzer.pairs;
  let one = corpus_of_programs [ parse "for i = 1 to 9 do\n  a[i + 1] = a[i] + 1\nend" ] in
  let r = Batch.run ~jobs:8 one in
  Alcotest.(check int) "one item, more jobs than items" 1 (List.length r.Batch.items);
  Alcotest.check_raises "jobs must be positive"
    (Invalid_argument "Batch.run: jobs must be >= 1") (fun () ->
      ignore (Batch.run ~jobs:0 one))

let arb_corpus =
  QCheck.make
    ~print:(fun progs ->
      String.concat "\n---\n" (List.map Dda_lang.Pretty.program_to_string progs))
    QCheck.Gen.(list_size (int_range 2 5) (QCheck.gen Test_support.Gen_ast.arb_affine_nest))

let prop_batch_deterministic =
  (* The issue's headline property: on random corpora of affine nests,
     batch output (verdicts, direction vectors, merged stats) is
     identical for jobs in {1, 2, 4} and byte-identical to the
     sequential path. *)
  QCheck.Test.make ~name:"batch output invariant under the job count" ~count:20
    arb_corpus
    (fun programs ->
       let corpus = corpus_of_programs programs in
       let sequential =
         (* The sequential path, no pool involved. *)
         let items =
           List.mapi
             (fun i (it : Batch.item) ->
                {
                  Batch.index = i;
                  name = it.Batch.name;
                  report = Analyzer.analyze it.Batch.program;
                  verification = None;
                  lint = None;
                  attempts = 1;
                })
             corpus
         in
         let merged = Analyzer.fresh_stats () in
         List.iter
           (fun (a : Batch.analyzed) ->
              Analyzer.merge_stats ~into:merged a.Batch.report.Analyzer.stats)
           items;
         fingerprint
           {
             Batch.items;
             quarantined = [];
             retried = 0;
             merged;
             table_stats = None;
             contended = None;
           }
       in
       List.for_all
         (fun jobs -> fingerprint (Batch.run ~jobs corpus) = sequential)
         [ 1; 2; 4 ])

let prop_batch_share_memo_verdicts =
  (* Shared-session mode may change memo counters but never verdicts,
     direction vectors or distances. *)
  QCheck.Test.make ~name:"shared-memo batch preserves all verdicts" ~count:15
    arb_corpus
    (fun programs ->
       let corpus = corpus_of_programs programs in
       let pairs_only (r : Batch.result) =
         List.map
           (fun (a : Batch.analyzed) ->
              List.map Json_out.pair a.Batch.report.Analyzer.pair_reports)
           r.Batch.items
       in
       let isolated = pairs_only (Batch.run ~jobs:1 corpus) in
       List.for_all
         (fun jobs ->
            pairs_only (Batch.run ~share_memo:true ~jobs corpus) = isolated)
         [ 1; 3 ])

let prop_batch_live_vs_merge_after =
  (* The sharded live-sharing path against its differential oracle, the
     per-domain-sessions-merged-after path: byte-identical per-item
     reports (verdicts, direction vectors, distances) and identical
     distinct-problem counts at any job count. *)
  QCheck.Test.make ~name:"live-shared equals merge-after (verdicts + uniques)"
    ~count:15 arb_corpus
    (fun programs ->
       let corpus = corpus_of_programs programs in
       let reports_bytes (r : Batch.result) =
         String.concat "\n"
           (List.map
              (fun (a : Batch.analyzed) ->
                 a.Batch.name ^ " "
                 ^ String.concat ";"
                     (List.map
                        (fun p -> Json_out.to_string (Json_out.pair p))
                        a.Batch.report.Analyzer.pair_reports))
              r.Batch.items)
       in
       let uniques (r : Batch.result) =
         ( r.Batch.merged.Analyzer.memo_unique_nobounds,
           r.Batch.merged.Analyzer.memo_unique_full )
       in
       List.for_all
         (fun jobs ->
            let live = Batch.run ~share_memo:true ~jobs corpus in
            let merge =
              Batch.run ~share_memo:true ~memo_merge_after:true ~jobs corpus
            in
            reports_bytes live = reports_bytes merge
            && uniques live = uniques merge
            && live.Batch.contended <> None
            && merge.Batch.contended = None)
         [ 1; 2; 4 ])

let test_batch_share_memo_unique_counts () =
  (* Two copies of the same program: whatever the chunking, the union
     of the per-domain tables holds each distinct problem once, and the
     merged unique counts must not double-count. *)
  let prog = parse "for i = 1 to 10 do\n  a[i + 2] = a[i] + 1\nend" in
  let corpus = corpus_of_programs [ prog; prog ] in
  let solo = Batch.run ~share_memo:true ~jobs:1 (corpus_of_programs [ prog ]) in
  let r1 = Batch.run ~share_memo:true ~jobs:1 corpus in
  let r2 = Batch.run ~share_memo:true ~jobs:2 corpus in
  Alcotest.(check int) "jobs=1: second copy adds no unique problems"
    solo.Batch.merged.Analyzer.memo_unique_full
    r1.Batch.merged.Analyzer.memo_unique_full;
  Alcotest.(check int) "jobs=2: union across domains deduplicates"
    solo.Batch.merged.Analyzer.memo_unique_full
    r2.Batch.merged.Analyzer.memo_unique_full

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "engine"
    [
      ( "pool",
        [
          Alcotest.test_case "basic" `Quick test_pool_basic;
          Alcotest.test_case "many tasks, input order" `Quick test_pool_many_tasks;
          Alcotest.test_case "exception propagation" `Quick
            test_pool_exception_propagates;
          Alcotest.test_case "jobs=1 is in-order sequential" `Quick
            test_pool_jobs1_sequential;
          Alcotest.test_case "shutdown" `Quick test_pool_shutdown;
          Alcotest.test_case "stress with mixed failures" `Quick
            test_pool_stress_mixed_failures;
        ] );
      ( "merge",
        [
          Alcotest.test_case "memo merge_into" `Quick test_memo_merge;
          Alcotest.test_case "memo merge rehash" `Quick test_memo_merge_grows;
          Alcotest.test_case "merge_stats sums fields" `Quick test_merge_stats;
          Alcotest.test_case "merge_sessions unions tables" `Quick
            test_merge_sessions;
          qt prop_hash_formula;
        ] );
      ( "sharded",
        [
          Alcotest.test_case "basic protocol" `Quick test_sharded_basic;
          Alcotest.test_case "stats aggregate stripes" `Quick
            test_sharded_stats_aggregate;
          Alcotest.test_case "shared across four domains" `Quick
            test_sharded_across_domains;
        ] );
      ( "batch",
        [
          Alcotest.test_case "chunks" `Quick test_chunks;
          Alcotest.test_case "empty and small corpora" `Quick
            test_batch_empty_and_small;
          Alcotest.test_case "shared-memo unique counts" `Quick
            test_batch_share_memo_unique_counts;
          qt prop_batch_deterministic;
          qt prop_batch_share_memo_verdicts;
          qt prop_batch_live_vs_merge_after;
        ] );
    ]
