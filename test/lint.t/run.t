The parallelism linter: per-loop verdicts, annotation checking, and
the exit-code contract — 0 clean, 1 input error, 2 findings; degraded
evidence downgrades findings to warnings (exit 0), never fabricates
races, and never certifies a DOALL.

  $ cat > clean.dd <<'EOF'
  > parallel for i = 1 to 10 do
  >   a[i] = b[i] + 1
  > end
  > EOF

  $ cat > race.dd <<'EOF'
  > parallel for i = 1 to 10 do
  >   a[i] = a[i - 1] + 1
  > end
  > EOF

A certified annotation is clean: the loop is DOALL, no findings,
exit 0.

  $ ddtest lint clean.dd
  clean.dd: parallelism summary
    loop i (L0, depth 0) at 1:1: doall [annotated parallel]
  lint: 1 loops: 1 doall, 0 vectorizable, 0 reduction, 0 serial; 0 errors, 0 warnings

A carried flow dependence under a parallel annotation is a race: the
finding cites the dependence kind, direction vector and a concrete
witness iteration pair, and the run exits 2.

  $ ddtest lint race.dd
  race.dd: parallelism summary
    loop i (L0, depth 0) at 1:1: serial [annotated parallel] — 1 carried edge on 'a'
  race.dd:1:1: error: [parallel-race] parallel loop 'i' races: carried flow dependence on array 'a' (<); witness iterations (1) and (2) (second reference at 2:3)
  lint: 1 loops: 0 doall, 0 vectorizable, 0 reduction, 1 serial; 1 errors, 0 warnings
  [2]

Malformed input is an input error, exit 1.

  $ cat > bad.dd <<'EOF'
  > for i = 1 to 99999999999999999999999 do
  >   a[i] = a[i - 1] + 1
  > end
  > EOF
  $ ddtest lint bad.dd
  bad.dd:1:37: lexical error: integer literal out of range: 99999999999999999999999
  [1]

A starved budget degrades the evidence: the same race comes back as a
conservative (inexact) edge, so the verdict is still serial — degraded
evidence can only deny a DOALL — but the finding is a warning, not a
fabricated race, and the exit code is 0.

  $ ddtest lint race.dd --budget-steps 1
  race.dd: parallelism summary
    loop i (L0, depth 0) at 1:1: serial [annotated parallel] [degraded evidence] — 2 carried edges on 'a'
  race.dd:1:1: warning: [parallel-unproven] parallel loop 'i' cannot be certified: carried output dependence on array 'a' (conservative) blocks it only conservatively (and 1 more blocking dependence) (second reference at 2:3)
  lint: 1 loops: 0 doall, 0 vectorizable, 0 reduction, 1 serial; 0 errors, 1 warnings

Unannotated loops are summarized too: matmul's i and j are DOALL, its
accumulation loop k is a reduction candidate, and nothing draws a
finding.

  $ cat > matmul.dd <<'EOF'
  > for i = 1 to 20 do
  >   for j = 1 to 20 do
  >     for k = 1 to 20 do
  >       c[i][j] = c[i][j] + a[i][k] * b[k][j]
  >     end
  >   end
  > end
  > EOF
  $ ddtest lint matmul.dd
  matmul.dd: parallelism summary
    loop i (L0, depth 0) at 1:1: doall
    loop j (L1, depth 1) at 2:3: doall
    loop k (L2, depth 2) at 3:5: reduction — 3 carried edges on 'c'
  lint: 3 loops: 2 doall, 0 vectorizable, 1 reduction, 0 serial; 0 errors, 0 warnings

The JSON form carries the full summary: verdicts, classified edge
counts, and machine-readable findings (exit code unchanged).

  $ ddtest lint race.dd --format json | grep -o '"verdict": "serial"'
  "verdict": "serial"
  $ ddtest lint race.dd --format json | grep -o '"kind": "flow"'
  "kind": "flow"
  $ ddtest lint race.dd --format json | grep -o '"iter1": \["1"\]'
  "iter1": ["1"]
  $ ddtest lint clean.dd --format json | grep -o '"doall": 1'
  "doall": 1

SARIF 2.1.0 for code-scanning consumers: a ddtest-lint driver with the
two rules, and one result per finding.

  $ ddtest lint race.dd --format sarif | grep -o '"version": "2.1.0"'
  "version": "2.1.0"
  $ ddtest lint race.dd --format sarif | grep -o '"name": "ddtest-lint"'
  "name": "ddtest-lint"
  $ ddtest lint race.dd --format sarif | grep -o '"ruleId": "parallel-race"'
  "ruleId": "parallel-race"
  $ ddtest lint race.dd --format sarif | grep -o '"level": "error"'
  "level": "error"

--differential executes every DOALL loop under permuted iteration
orders and diffs the final stores against sequential execution; a
certified loop must pass.

  $ ddtest lint clean.dd --differential > /dev/null

The batch engine carries lint along with each item's report (and the
race still drives exit 2 through the corpus run).

  $ ddtest batch --lint --format json clean.dd race.dd | grep -c '"lint":'
  2
  $ ddtest batch --lint --stream --format json clean.dd race.dd | grep -c '"lint":'
  2

The C backend trusts only certified DOALL verdicts: matmul's i loop
gets the pragma, the reduction loop k does not.

  $ ddtest cc matmul.dd | grep -c 'pragma omp parallel for'
  2
