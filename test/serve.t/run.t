The analysis daemon: a long-lived JSONL service over a Unix socket,
backed by a durable, corruption-detecting memo cache. A program to ask
about — the paper's flow-dependent loop:

  $ cat > p.dd <<'EOF'
  > for i = 1 to 10 do
  >   a[i] = a[i-1] + 1
  > end
  > EOF
  $ cat > q.dd <<'EOF'
  > for i = 1 to 8 do
  >   b[2*i] = b[2*i+1] + 3
  > end
  > EOF

Start a daemon, wait for its socket, and talk to it:

  $ ddtest serve --socket s.sock --cache memo.cache 2>serve1.log &
  $ SRV=$!
  $ for i in $(seq 1 100); do [ -S s.sock ] && break; sleep 0.1; done

  $ ddtest query --socket s.sock --ping p.dd q.dd
  {"id":null,"ok":true,"pong":true}
  {"id":0,"ok":true,"pairs":[{"array":"a","ref1":{"loc":"2:3","role":"write"},"ref2":{"loc":"2:3","role":"write"},"self":true,"common_loops":1,"outcome":{"verdict":"independent","how":"tested","exact":true}},{"array":"a","ref1":{"loc":"2:3","role":"write"},"ref2":{"loc":"2:10","role":"read"},"self":false,"common_loops":1,"outcome":{"verdict":"dependent","how":"tested","exact":true,"vectors":[{"directions":"(<)","kind":"flow"}],"distance":[1]}}]}
  {"id":1,"ok":true,"pairs":[{"array":"b","ref1":{"loc":"2:3","role":"write"},"ref2":{"loc":"2:3","role":"write"},"self":true,"common_loops":1,"outcome":{"verdict":"independent","how":"tested","exact":true}},{"array":"b","ref1":{"loc":"2:3","role":"write"},"ref2":{"loc":"2:12","role":"read"},"self":false,"common_loops":1,"outcome":{"verdict":"independent","how":"extended-gcd"}}]}

Asking twice gives byte-identical answers (the second is a cache hit;
the bytes must not know the difference), and errors are answers, not
crashes:

  $ ddtest query --socket s.sock p.dd > first.out
  $ ddtest query --socket s.sock p.dd > second.out
  $ cmp first.out second.out && echo identical
  identical
  $ echo 'for i = oops' > bad.dd
  $ ddtest query --socket s.sock bad.dd
  {"id":0,"ok":false,"error":"2:1: syntax error: expected 'to' (found '<eof>')"}
  [2]

Status shows the dashboard; the cache has been absorbing memo misses:

  $ ddtest query --socket s.sock --status | grep -o '"shed":[0-9]*,"quarantined":[0-9]*'
  "shed":0,"quarantined":0
  $ ddtest query --socket s.sock --status | grep -o '"appends":[1-9]' > /dev/null && echo non-empty
  non-empty

Graceful drain: SIGTERM finishes in-flight work, fsyncs the cache,
removes the socket, and the daemon exits 0:

  $ kill -TERM $SRV
  $ wait $SRV
  $ [ -S s.sock ] || echo socket gone
  socket gone

A restarted daemon on the same cache file serves byte-identical
answers from the replayed memo tables:

  $ ddtest serve --socket s.sock --cache memo.cache 2>serve2.log &
  $ SRV=$!
  $ for i in $(seq 1 100); do [ -S s.sock ] && break; sleep 0.1; done
  $ ddtest query --socket s.sock p.dd > warm.out
  $ cmp first.out warm.out && echo identical
  identical
  $ kill -TERM $SRV
  $ wait $SRV

Chaos: kill the daemon dead (SIGKILL via failpoint) in the middle of a
cache append — between writing a record's frame header and its
payload, the worst possible moment. The file is left with a torn
tail:

  $ cp memo.cache memo.bak
  $ DDA_FAILPOINTS='cache.append.mid=kill@1' ddtest serve --socket s.sock --cache chaos.cache 2>serve3.log &
  $ SRV=$!
  $ for i in $(seq 1 100); do [ -S s.sock ] && break; sleep 0.1; done
  $ ddtest query --socket s.sock p.dd 2>/dev/null
  [1]
  $ wait $SRV
  [137]

Restart over the damaged file: recovery truncates the torn tail
(warning on stderr) and the answers are byte-for-byte what a healthy
run gives. (The SIGKILLed daemon left a stale socket file behind; it
is removed first so the socket's reappearance marks the new daemon.)

  $ rm -f s.sock
  $ ddtest serve --socket s.sock --cache chaos.cache 2>serve4.log &
  $ SRV=$!
  $ for i in $(seq 1 100); do [ -S s.sock ] && break; sleep 0.1; done
  $ ddtest query --socket s.sock p.dd > recovered.out
  $ cmp first.out recovered.out && echo identical
  identical
  $ kill -TERM $SRV
  $ wait $SRV
  $ grep -c 'damaged trailing' serve4.log
  1

A cache written under a different analyzer configuration is set aside
(never read as data — its keys mean something else) and the daemon
starts cold:

  $ ddtest serve --socket s.sock --cache memo.cache --memo simple 2>serve5.log &
  $ SRV=$!
  $ for i in $(seq 1 100); do [ -S s.sock ] && break; sleep 0.1; done
  $ ddtest query --socket s.sock p.dd > reconfigured.out
  $ kill -TERM $SRV
  $ wait $SRV
  $ grep -o 'fingerprint mismatch[^;]*' serve5.log
  fingerprint mismatch (written by a different analyzer version or configuration)
  $ [ -f memo.cache.rejected ] && echo preserved
  preserved

The verdicts still agree, of course — a cold start changes latency,
never answers:

  $ cmp first.out reconfigured.out && echo identical
  identical

The telemetry plane: --admin-port 0 binds an ephemeral HTTP port on
loopback (announced in the log), --access-log records one JSON line
per request, and `ddtest top --scrape` is a built-in curl substitute:

  $ ddtest serve --log-level info --socket s.sock --cache memo.cache --admin-port 0 --access-log access.jsonl 2>serve6.log &
  $ SRV=$!
  $ for i in $(seq 1 100); do [ -S s.sock ] && break; sleep 0.1; done
  $ for i in $(seq 1 100); do grep -q 'admin listening' serve6.log && break; sleep 0.1; done
  $ PORT=$(grep -o 'admin listening on 127.0.0.1:[0-9]*' serve6.log | grep -o '[0-9]*$')

Liveness and readiness answer while the daemon serves:

  $ ddtest top --port $PORT --scrape /healthz
  ok
  $ ddtest top --port $PORT --scrape /readyz
  ready

An explained query attributes its time per cascade stage (the values
vary run to run; the shape does not):

  $ ddtest query --socket s.sock --explain p.dd | grep -o '"explain":{"stages":{"gcd":{"calls":[0-9]*' | grep -o '.*calls'
  "explain":{"stages":{"gcd":{"calls

/metrics speaks Prometheus text exposition: counters and cumulative
histograms, every family with HELP and TYPE lines:

  $ ddtest top --port $PORT --scrape /metrics > metrics.txt
  $ grep -c '^# TYPE dda_serve_requests counter$' metrics.txt
  1
  $ grep -c '^# HELP dda_serve_op_analyze_ns ' metrics.txt
  1
  $ grep -o '^# TYPE dda_serve_op_analyze_ns histogram$' metrics.txt
  # TYPE dda_serve_op_analyze_ns histogram
  $ grep -o 'dda_serve_op_analyze_ns_bucket{le="+Inf"} [0-9]*' metrics.txt
  dda_serve_op_analyze_ns_bucket{le="+Inf"} 1
  $ grep -o '^dda_memo_lookups [0-9]*' metrics.txt > /dev/null && echo exposed
  exposed

`ddtest top --once` renders one frame of the live view from the same
scrape:

  $ ddtest top --port $PORT --once | grep -o 'requests: [0-9]* (qps -)'
  requests: 1 (qps -)
  $ ddtest top --port $PORT --once | grep -c '^op '
  1

/status mirrors the socket status op, with uptime and peak RSS:

  $ ddtest top --port $PORT --scrape /status | grep -o '"uptime_ns":'
  "uptime_ns":
  $ ddtest top --port $PORT --scrape /status | grep -o '"peak_rss_kb":'
  "peak_rss_kb":

Unknown paths are a 404 and exit 2 — and none of this touched the
data plane:

  $ ddtest top --port $PORT --scrape /nope
  not found
  [2]
  $ ddtest query --socket s.sock p.dd > telemetry.out
  $ cmp first.out telemetry.out && echo identical
  identical

The access log holds exactly one line per request served so far, in
request order:

  $ kill -TERM $SRV
  $ wait $SRV
  $ grep -c '"op":' access.jsonl
  2
  $ grep -c '"op":"analyze"' access.jsonl
  2
  $ head -1 access.jsonl | grep -o '"req":1,"op":"analyze","ok":true'
  "req":1,"op":"analyze","ok":true
