(* The parallelism linter against its two oracles: every DOALL verdict
   must survive permuted-order execution (the differential oracle —
   reordering a truly independent loop's iterations cannot change the
   final store), and every injected [parallel] annotation must be
   answered exactly as the evidence warrants — a race error when the
   blocking dependence is exact, a warning when only conservative or
   degraded evidence blocks it. Plus the soundness direction itself:
   starving the budget may only shrink the DOALL set, never grow it. *)

open Dda_lang
open Dda_core
open Dda_perfect
open Dda_analysis

let arb_fuzzed =
  QCheck.make
    ~print:(fun (p, s, i) ->
      Printf.sprintf "(%s, seed=%d, index=%d)\n%s" (Fuzz.profile_name p) s i
        (Fuzz.program p ~seed:s ~index:i))
    QCheck.Gen.(
      triple (oneofl Fuzz.all_profiles) (int_bound 100_000) (int_bound 5_000))

let lint_of (profile, seed, index) =
  let text = Fuzz.program profile ~seed ~index in
  Lint.run (Parser.parse_program text)

(* ------------------------------------------------------------------ *)
(* DOALL verdicts vs the permuted-order interpreter                    *)
(* ------------------------------------------------------------------ *)

let prop_doall_differential =
  QCheck.Test.make
    ~name:"every DOALL loop survives permuted-order execution" ~count:200
    arb_fuzzed
    (fun input ->
       let res = lint_of input in
       match Pardiff.check ~prepared:res.Lint.prepared res.Lint.summary with
       | Ok _ -> true
       | Error msg -> QCheck.Test.fail_reportf "differential failure: %s" msg)

(* ------------------------------------------------------------------ *)
(* Injected annotations vs findings                                    *)
(* ------------------------------------------------------------------ *)

(* Mark every loop [parallel], so the annotation checker must rule on
   each one. *)
let rec annotate_stmt (s : Ast.stmt) =
  match s.sdesc with
  | Ast.For f ->
    {
      s with
      sdesc =
        Ast.For { f with parallel = true; body = List.map annotate_stmt f.body };
    }
  | Ast.If (c, t, e) ->
    {
      s with
      sdesc = Ast.If (c, List.map annotate_stmt t, List.map annotate_stmt e);
    }
  | Ast.Assign _ | Ast.Read _ -> s

let has_exact_evidence (li : Summary.loop_info) =
  List.exists (fun (b : Summary.blocking) -> b.edge.Classify.exact) li.blocking
  || li.scalar_blockers <> []

let prop_annotations_answered =
  QCheck.Test.make
    ~name:
      "every annotated carried-dep loop is reported — race iff the evidence \
       is exact"
    ~count:200 arb_fuzzed
    (fun (profile, seed, index) ->
       let text = Fuzz.program profile ~seed ~index in
       let prog = List.map annotate_stmt (Parser.parse_program text) in
       let res = Lint.run prog in
       List.for_all
         (fun (li : Summary.loop_info) ->
            let at_loc (d : Dda_check.Verify.diagnostic) =
              Loc.equal d.loc li.loc
            in
            if (not li.parallel_annot) || li.verdict = Summary.Doall then
              (* Certified loops draw no finding. *)
              (not li.parallel_annot)
              || not (List.exists at_loc res.Lint.findings)
            else
              match List.find_opt at_loc res.Lint.findings with
              | None ->
                QCheck.Test.fail_reportf
                  "loop %s at %s: %s verdict but no finding\n%s" li.var
                  (Loc.to_string li.loc)
                  (Summary.verdict_name li.verdict)
                  text
              | Some d ->
                let want_error = has_exact_evidence li in
                let is_error =
                  d.Dda_check.Verify.severity = Dda_check.Verify.Sev_error
                in
                if want_error <> is_error then
                  QCheck.Test.fail_reportf
                    "loop %s at %s: exact evidence %b but severity %s\n%s"
                    li.var
                    (Loc.to_string li.loc)
                    want_error
                    (Dda_check.Verify.severity_name d.Dda_check.Verify.severity)
                    text
                else
                  String.equal d.Dda_check.Verify.code
                    (if want_error then "parallel-race"
                     else "parallel-unproven"))
         res.Lint.summary.Summary.loops)

(* ------------------------------------------------------------------ *)
(* Degradation only denies                                             *)
(* ------------------------------------------------------------------ *)

let starved =
  {
    Analyzer.default_config with
    Analyzer.limits =
      { Budget.default_limits with Budget.max_steps = Some 1 };
  }

let doall_set (res : Lint.result) =
  List.filter_map
    (fun (lid, d) -> if d then Some lid else None)
    (Summary.doall_loops res.Lint.summary)

let prop_starved_budget_only_denies =
  QCheck.Test.make
    ~name:"a starved budget never grants a DOALL the full analysis denies"
    ~count:100 arb_fuzzed
    (fun (profile, seed, index) ->
       let text = Fuzz.program profile ~seed ~index in
       let full = Lint.run (Parser.parse_program text) in
       let tight = Lint.run ~config:starved (Parser.parse_program text) in
       let full_doall = doall_set full in
       List.for_all
         (fun lid ->
            List.mem lid full_doall
            || QCheck.Test.fail_reportf
                 "starved budget certified L%d that the full analysis denies\n\
                  %s"
                 lid text)
         (doall_set tight)
       && List.for_all
            (fun (li : Summary.loop_info) ->
               (not li.degraded) || li.verdict <> Summary.Doall)
            tight.Lint.summary.Summary.loops)

(* ------------------------------------------------------------------ *)
(* Deterministic fixtures                                              *)
(* ------------------------------------------------------------------ *)

let parse = Parser.parse_program

let test_race_reported () =
  let res =
    Lint.run
      (parse "parallel for i = 1 to 10 do\n  a[i] = a[i - 1] + 1\nend\n")
  in
  Alcotest.(check int) "one error" 1 res.Lint.errors;
  match res.Lint.findings with
  | [ d ] ->
    Alcotest.(check string) "code" "parallel-race" d.Dda_check.Verify.code;
    Alcotest.(check bool)
      "witness mentioned" true
      (let msg = d.Dda_check.Verify.message in
       let has_sub sub =
         let n = String.length sub and m = String.length msg in
         let rec go i = i + n <= m && (String.sub msg i n = sub || go (i + 1)) in
         go 0
       in
       has_sub "witness iterations")
  | _ -> Alcotest.fail "expected exactly one finding"

let test_clean_certified () =
  let res =
    Lint.run (parse "parallel for i = 1 to 10 do\n  a[i] = b[i] + 1\nend\n")
  in
  Alcotest.(check int) "no errors" 0 res.Lint.errors;
  Alcotest.(check int) "no warnings" 0 res.Lint.warnings;
  match res.Lint.summary.Summary.loops with
  | [ li ] ->
    Alcotest.(check string) "doall" "doall" (Summary.verdict_name li.verdict)
  | _ -> Alcotest.fail "expected one loop"

let test_reduction_detected () =
  let res =
    Lint.run (parse "for i = 1 to 10 do\n  s = s + a[i]\nend\n")
  in
  match res.Lint.summary.Summary.loops with
  | [ li ] ->
    Alcotest.(check string) "reduction" "reduction"
      (Summary.verdict_name li.verdict)
  | _ -> Alcotest.fail "expected one loop"

let test_starved_race_degrades_to_warning () =
  let res =
    Lint.run ~config:starved
      (parse "parallel for i = 1 to 10 do\n  a[i] = a[i - 1] + 1\nend\n")
  in
  Alcotest.(check int) "no errors under a starved budget" 0 res.Lint.errors;
  Alcotest.(check int) "one warning" 1 res.Lint.warnings;
  match res.Lint.findings with
  | [ d ] ->
    Alcotest.(check string) "code" "parallel-unproven" d.Dda_check.Verify.code
  | _ -> Alcotest.fail "expected exactly one finding"

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "lint"
    [
      ( "fixtures",
        [
          Alcotest.test_case "race reported with witness" `Quick
            test_race_reported;
          Alcotest.test_case "clean annotation certified" `Quick
            test_clean_certified;
          Alcotest.test_case "reduction detected" `Quick
            test_reduction_detected;
          Alcotest.test_case "starved race degrades to warning" `Quick
            test_starved_race_degrades_to_warning;
        ] );
      ( "fuzzed",
        [
          qt prop_doall_differential;
          qt prop_annotations_answered;
          qt prop_starved_budget_only_denies;
        ] );
    ]
