(* The observability stack: strict clock monotonicity, the leveled
   logger, the striped metrics registry, the per-domain trace
   collector and its Chrome export, and the headline property that
   every metric the batch driver embeds in its JSON output is a pure
   function of the corpus — invariant under the worker count. *)

open Dda_obs
open Dda_engine

(* ------------------------------------------------------------------ *)
(* Clock                                                               *)
(* ------------------------------------------------------------------ *)

let test_clock_strict () =
  Clock.use_tick_counter ();
  let prev = ref (Clock.now ()) in
  for _ = 1 to 10_000 do
    let t = Clock.now () in
    if t <= !prev then Alcotest.failf "clock repeated: %d after %d" t !prev;
    prev := t
  done;
  (* A stuck source is nudged forward, never allowed to repeat. *)
  Clock.set_source (fun () -> 42);
  let a = Clock.now () in
  let b = Clock.now () in
  Clock.use_tick_counter ();
  Alcotest.(check bool) "stuck source still strict" true (b > a)

(* ------------------------------------------------------------------ *)
(* Log                                                                 *)
(* ------------------------------------------------------------------ *)

let test_log_levels () =
  List.iter
    (fun (name, l) ->
       Alcotest.(check string) "name round-trip" name (Log.level_name l);
       Alcotest.(check bool) "parse round-trip" true
         (Log.level_of_string name = Some l))
    Log.all_levels;
  Alcotest.(check bool) "unknown level rejected" true
    (Log.level_of_string "loud" = None);
  let saved = Log.level () in
  Log.set_level Log.Debug;
  Alcotest.(check bool) "set/get" true (Log.level () = Log.Debug);
  Log.set_level saved

(* ------------------------------------------------------------------ *)
(* Metrics registry                                                    *)
(* ------------------------------------------------------------------ *)

let test_counter_basics () =
  Metrics.reset ();
  let c = Metrics.counter "test.obs.counter" in
  Metrics.incr c;
  Metrics.add c 41;
  (* find-or-register is idempotent: the same name is the same counter *)
  Metrics.incr (Metrics.counter "test.obs.counter");
  Alcotest.(check int) "counter value" 43
    (Metrics.find_counter (Metrics.snapshot ()) "test.obs.counter");
  Alcotest.(check int) "absent counter reads 0" 0
    (Metrics.find_counter (Metrics.snapshot ()) "no.such.counter")

let test_histogram_buckets () =
  Alcotest.(check int) "non-positive samples go to bucket 0" 0
    (Metrics.bucket_of 0);
  Alcotest.(check int) "bucket 0 lower bound" 0 (Metrics.bucket_lo 0);
  for s = 1 to 4096 do
    let b = Metrics.bucket_of s in
    let lo = Metrics.bucket_lo b in
    if not (lo <= s && s <= (2 * lo) - 1) then
      Alcotest.failf "sample %d filed in bucket %d = [%d, %d]" s b lo
        ((2 * lo) - 1)
  done;
  Metrics.reset ();
  let h = Metrics.histogram "test.obs.hist" in
  List.iter (Metrics.observe h) [ -3; 0; 1; 5; 1000 ];
  let snap = Metrics.snapshot () in
  match List.assoc_opt "test.obs.hist" snap.Metrics.histograms with
  | None -> Alcotest.fail "histogram missing from snapshot"
  | Some hs ->
    Alcotest.(check int) "count" 5 hs.Metrics.count;
    Alcotest.(check int) "sum" 1003 hs.Metrics.sum;
    Alcotest.(check int) "samples across buckets" 5
      (List.fold_left (fun acc (_, n) -> acc + n) 0 hs.Metrics.buckets)

let test_merge_and_reset () =
  Metrics.reset ();
  let c = Metrics.counter "test.obs.merge" in
  Metrics.add c 5;
  let s1 = Metrics.snapshot () in
  Metrics.reset ();
  Metrics.add c 7;
  let s2 = Metrics.snapshot () in
  Alcotest.(check int) "reset zeroes but keeps the name" 7
    (Metrics.find_counter s2 "test.obs.merge");
  Alcotest.(check int) "merge sums pointwise" 12
    (Metrics.find_counter (Metrics.merge s1 s2) "test.obs.merge")

let test_striped_parallel () =
  Metrics.reset ();
  let c = Metrics.counter "test.obs.parallel" in
  let worker () =
    Domain.spawn (fun () ->
        for _ = 1 to 10_000 do
          Metrics.incr c
        done)
  in
  let ds = List.init 4 (fun _ -> worker ()) in
  List.iter Domain.join ds;
  Alcotest.(check int) "no update lost across stripes" 40_000
    (Metrics.find_counter (Metrics.snapshot ()) "test.obs.parallel")

(* ------------------------------------------------------------------ *)
(* Trace collector                                                     *)
(* ------------------------------------------------------------------ *)

let with_trace f =
  Clock.use_tick_counter ();
  Trace.clear ();
  Trace.enable ();
  Fun.protect
    ~finally:(fun () ->
        Trace.disable ();
        Trace.clear ())
    f

let test_ring_growth () =
  with_trace (fun () ->
      (* Push through several ring growths (the buffer starts small):
         nothing lost, no uninitialized slot leaks into the export. *)
      for i = 1 to 5_000 do
        Trace.instant "tick" ~args:[ ("i", i) ]
      done;
      let evs = Trace.events () in
      Alcotest.(check int) "all events kept" 5_000 (List.length evs);
      Alcotest.(check int) "nothing dropped" 0 (Trace.dropped ());
      List.iter
        (fun (e : Trace.event) ->
           if e.Trace.name <> "tick" then
             Alcotest.failf "alien event %S in the ring" e.Trace.name)
        evs;
      ignore
        (List.fold_left
           (fun prev (e : Trace.event) ->
              if e.Trace.ts <= prev then
                Alcotest.failf "timestamps not strict: %d after %d" e.Trace.ts
                  prev;
              e.Trace.ts)
           min_int evs))

let test_ring_overflow_counts_losses () =
  with_trace (fun () ->
      for _ = 1 to 70_000 do
        Trace.instant "spam"
      done;
      let kept = List.length (Trace.events ()) in
      Alcotest.(check bool) "overflow drops something" true
        (Trace.dropped () > 0);
      Alcotest.(check int) "kept + dropped = pushed" 70_000
        (kept + Trace.dropped ()))

let test_wrap_closes_on_raise () =
  with_trace (fun () ->
      (try
         Trace.wrap ~name:"boom"
           ~args:(fun _ -> [ ("unreachable", 1) ])
           (fun () -> failwith "expected")
       with Failure _ -> ());
      match Trace.events () with
      | [ e ] ->
        Alcotest.(check string) "span name" "boom" e.Trace.name;
        Alcotest.(check bool) "raised flag" true
          (List.mem ("raised", 1) e.Trace.args);
        Alcotest.(check bool) "span, not instant" true (e.Trace.dur >= 0)
      | evs -> Alcotest.failf "expected 1 span, got %d" (List.length evs))

(* The Chrome export, parsed back with the bench harness's JSON
   parser: structurally well-formed, correctly escaped, and strictly
   timestamp-ordered within each track. *)
let test_chrome_export_well_formed () =
  let json =
    with_trace (fun () ->
        Trace.instant "needs \"escaping\"\n" ~args:[ ("k", 1) ];
        Trace.wrap ~name:"outer"
          ~args:(fun _ -> [ ("v", 2) ])
          (fun () ->
             Trace.wrap ~name:"inner" ~args:(fun _ -> []) (fun () -> ()));
        let d = Domain.spawn (fun () -> Trace.instant "worker") in
        Domain.join d;
        Trace.to_chrome_string ())
  in
  let get k j =
    match Perf_json.member k j with
    | Some v -> v
    | None -> Alcotest.failf "missing field %s" k
  in
  let doc = Perf_json.parse json in
  let events = Perf_json.to_list (get "traceEvents" doc) in
  (* one metadata record per track plus our four events *)
  Alcotest.(check bool) "has events" true (List.length events >= 5);
  let last_ts = Hashtbl.create 4 in
  List.iter
    (fun e ->
       let ph = Perf_json.to_str (get "ph" e) in
       ignore (Perf_json.to_str (get "name" e));
       match ph with
       | "M" -> ()
       | "X" | "i" ->
         let tid = int_of_float (Perf_json.to_num (get "tid" e)) in
         let ts = Perf_json.to_num (get "ts" e) in
         (match Hashtbl.find_opt last_ts tid with
          | Some prev when ts <= prev ->
            Alcotest.failf "track %d not strictly ordered: %f after %f" tid
              ts prev
          | _ -> ());
         Hashtbl.replace last_ts tid ts;
         if ph = "X" then
           Alcotest.(check bool) "complete events carry a duration" true
             (Perf_json.to_num (get "dur" e) >= 0.)
       | other -> Alcotest.failf "unexpected phase %S" other)
    events;
  Alcotest.(check bool) "worker got its own track" true
    (Hashtbl.length last_ts >= 2)

(* ------------------------------------------------------------------ *)
(* Batch metrics are jobs-invariant                                    *)
(* ------------------------------------------------------------------ *)

let corpus_of_programs programs =
  List.mapi
    (fun i program -> { Batch.name = Printf.sprintf "p%d" i; program })
    programs

let arb_corpus =
  QCheck.make
    ~print:(fun progs ->
        String.concat "\n---\n" (List.map Dda_lang.Pretty.program_to_string progs))
    QCheck.Gen.(
      list_size (int_range 2 5) (QCheck.gen Test_support.Gen_ast.arb_affine_nest))

let prop_batch_metrics_jobs_invariant =
  (* Every counter and histogram the batch embeds in its JSON output
     must be a pure function of the per-item analysis work — running
     the same corpus on one worker or several yields the identical
     merged registry (the design rule that keeps batch output
     byte-identical across --jobs). *)
  QCheck.Test.make ~name:"batch metrics invariant under the job count"
    ~count:10 arb_corpus
    (fun programs ->
       let corpus = corpus_of_programs programs in
       let registry_of jobs =
         Metrics.reset ();
         ignore (Batch.run ~jobs corpus);
         Metrics.to_json_string (Metrics.snapshot ())
       in
       let solo = registry_of 1 in
       List.for_all (fun jobs -> registry_of jobs = solo) [ 2; 3 ])

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "obs"
    [
      ( "clock",
        [ Alcotest.test_case "strict monotonicity" `Quick test_clock_strict ] );
      ("log", [ Alcotest.test_case "levels" `Quick test_log_levels ]);
      ( "metrics",
        [
          Alcotest.test_case "counter basics" `Quick test_counter_basics;
          Alcotest.test_case "histogram buckets" `Quick test_histogram_buckets;
          Alcotest.test_case "merge and reset" `Quick test_merge_and_reset;
          Alcotest.test_case "striped updates across domains" `Quick
            test_striped_parallel;
        ] );
      ( "trace",
        [
          Alcotest.test_case "ring growth keeps every event" `Quick
            test_ring_growth;
          Alcotest.test_case "overflow counts losses" `Quick
            test_ring_overflow_counts_losses;
          Alcotest.test_case "wrap closes on raise" `Quick
            test_wrap_closes_on_raise;
          Alcotest.test_case "chrome export well-formed and ordered" `Quick
            test_chrome_export_well_formed;
        ] );
      ( "batch",
        [ qt prop_batch_metrics_jobs_invariant ] );
    ]
