(* The observability stack: strict clock monotonicity, the leveled
   logger, the striped metrics registry, the per-domain trace
   collector and its Chrome export, and the headline property that
   every metric the batch driver embeds in its JSON output is a pure
   function of the corpus — invariant under the worker count. *)

open Dda_obs
open Dda_engine

(* ------------------------------------------------------------------ *)
(* Clock                                                               *)
(* ------------------------------------------------------------------ *)

let test_clock_strict () =
  Clock.use_tick_counter ();
  let prev = ref (Clock.now ()) in
  for _ = 1 to 10_000 do
    let t = Clock.now () in
    if t <= !prev then Alcotest.failf "clock repeated: %d after %d" t !prev;
    prev := t
  done;
  (* A stuck source is nudged forward, never allowed to repeat. *)
  Clock.set_source (fun () -> 42);
  let a = Clock.now () in
  let b = Clock.now () in
  Clock.use_tick_counter ();
  Alcotest.(check bool) "stuck source still strict" true (b > a)

(* ------------------------------------------------------------------ *)
(* Log                                                                 *)
(* ------------------------------------------------------------------ *)

let test_log_levels () =
  List.iter
    (fun (name, l) ->
       Alcotest.(check string) "name round-trip" name (Log.level_name l);
       Alcotest.(check bool) "parse round-trip" true
         (Log.level_of_string name = Some l))
    Log.all_levels;
  Alcotest.(check bool) "unknown level rejected" true
    (Log.level_of_string "loud" = None);
  let saved = Log.level () in
  Log.set_level Log.Debug;
  Alcotest.(check bool) "set/get" true (Log.level () = Log.Debug);
  Log.set_level saved

(* ------------------------------------------------------------------ *)
(* Metrics registry                                                    *)
(* ------------------------------------------------------------------ *)

let test_counter_basics () =
  Metrics.reset ();
  let c = Metrics.counter "test.obs.counter" in
  Metrics.incr c;
  Metrics.add c 41;
  (* find-or-register is idempotent: the same name is the same counter *)
  Metrics.incr (Metrics.counter "test.obs.counter");
  Alcotest.(check int) "counter value" 43
    (Metrics.find_counter (Metrics.snapshot ()) "test.obs.counter");
  Alcotest.(check int) "absent counter reads 0" 0
    (Metrics.find_counter (Metrics.snapshot ()) "no.such.counter")

let test_histogram_buckets () =
  Alcotest.(check int) "non-positive samples go to bucket 0" 0
    (Metrics.bucket_of 0);
  Alcotest.(check int) "bucket 0 lower bound" 0 (Metrics.bucket_lo 0);
  for s = 1 to 4096 do
    let b = Metrics.bucket_of s in
    let lo = Metrics.bucket_lo b in
    if not (lo <= s && s <= (2 * lo) - 1) then
      Alcotest.failf "sample %d filed in bucket %d = [%d, %d]" s b lo
        ((2 * lo) - 1)
  done;
  Metrics.reset ();
  let h = Metrics.histogram "test.obs.hist" in
  List.iter (Metrics.observe h) [ -3; 0; 1; 5; 1000 ];
  let snap = Metrics.snapshot () in
  match List.assoc_opt "test.obs.hist" snap.Metrics.histograms with
  | None -> Alcotest.fail "histogram missing from snapshot"
  | Some hs ->
    Alcotest.(check int) "count" 5 hs.Metrics.count;
    Alcotest.(check int) "sum" 1003 hs.Metrics.sum;
    Alcotest.(check int) "samples across buckets" 5
      (List.fold_left (fun acc (_, n) -> acc + n) 0 hs.Metrics.buckets)

let test_merge_and_reset () =
  Metrics.reset ();
  let c = Metrics.counter "test.obs.merge" in
  Metrics.add c 5;
  let s1 = Metrics.snapshot () in
  Metrics.reset ();
  Metrics.add c 7;
  let s2 = Metrics.snapshot () in
  Alcotest.(check int) "reset zeroes but keeps the name" 7
    (Metrics.find_counter s2 "test.obs.merge");
  Alcotest.(check int) "merge sums pointwise" 12
    (Metrics.find_counter (Metrics.merge s1 s2) "test.obs.merge")

let test_striped_parallel () =
  Metrics.reset ();
  let c = Metrics.counter "test.obs.parallel" in
  let worker () =
    Domain.spawn (fun () ->
        for _ = 1 to 10_000 do
          Metrics.incr c
        done)
  in
  let ds = List.init 4 (fun _ -> worker ()) in
  List.iter Domain.join ds;
  Alcotest.(check int) "no update lost across stripes" 40_000
    (Metrics.find_counter (Metrics.snapshot ()) "test.obs.parallel")

(* ------------------------------------------------------------------ *)
(* Trace collector                                                     *)
(* ------------------------------------------------------------------ *)

let with_trace f =
  Clock.use_tick_counter ();
  Trace.clear ();
  Trace.enable ();
  Fun.protect
    ~finally:(fun () ->
        Trace.disable ();
        Trace.clear ())
    f

let test_ring_growth () =
  with_trace (fun () ->
      (* Push through several ring growths (the buffer starts small):
         nothing lost, no uninitialized slot leaks into the export. *)
      for i = 1 to 5_000 do
        Trace.instant "tick" ~args:[ ("i", i) ]
      done;
      let evs = Trace.events () in
      Alcotest.(check int) "all events kept" 5_000 (List.length evs);
      Alcotest.(check int) "nothing dropped" 0 (Trace.dropped ());
      List.iter
        (fun (e : Trace.event) ->
           if e.Trace.name <> "tick" then
             Alcotest.failf "alien event %S in the ring" e.Trace.name)
        evs;
      ignore
        (List.fold_left
           (fun prev (e : Trace.event) ->
              if e.Trace.ts <= prev then
                Alcotest.failf "timestamps not strict: %d after %d" e.Trace.ts
                  prev;
              e.Trace.ts)
           min_int evs))

let test_ring_overflow_counts_losses () =
  with_trace (fun () ->
      for _ = 1 to 70_000 do
        Trace.instant "spam"
      done;
      let kept = List.length (Trace.events ()) in
      Alcotest.(check bool) "overflow drops something" true
        (Trace.dropped () > 0);
      Alcotest.(check int) "kept + dropped = pushed" 70_000
        (kept + Trace.dropped ()))

let test_wrap_closes_on_raise () =
  with_trace (fun () ->
      (try
         Trace.wrap ~name:"boom"
           ~args:(fun _ -> [ ("unreachable", 1) ])
           (fun () -> failwith "expected")
       with Failure _ -> ());
      match Trace.events () with
      | [ e ] ->
        Alcotest.(check string) "span name" "boom" e.Trace.name;
        Alcotest.(check bool) "raised flag" true
          (List.mem ("raised", 1) e.Trace.args);
        Alcotest.(check bool) "span, not instant" true (e.Trace.dur >= 0)
      | evs -> Alcotest.failf "expected 1 span, got %d" (List.length evs))

(* The Chrome export, parsed back with the bench harness's JSON
   parser: structurally well-formed, correctly escaped, and strictly
   timestamp-ordered within each track. *)
let test_chrome_export_well_formed () =
  let json =
    with_trace (fun () ->
        Trace.instant "needs \"escaping\"\n" ~args:[ ("k", 1) ];
        Trace.wrap ~name:"outer"
          ~args:(fun _ -> [ ("v", 2) ])
          (fun () ->
             Trace.wrap ~name:"inner" ~args:(fun _ -> []) (fun () -> ()));
        let d = Domain.spawn (fun () -> Trace.instant "worker") in
        Domain.join d;
        Trace.to_chrome_string ())
  in
  let get k j =
    match Perf_json.member k j with
    | Some v -> v
    | None -> Alcotest.failf "missing field %s" k
  in
  let doc = Perf_json.parse json in
  let events = Perf_json.to_list (get "traceEvents" doc) in
  (* one metadata record per track plus our four events *)
  Alcotest.(check bool) "has events" true (List.length events >= 5);
  let last_ts = Hashtbl.create 4 in
  List.iter
    (fun e ->
       let ph = Perf_json.to_str (get "ph" e) in
       ignore (Perf_json.to_str (get "name" e));
       match ph with
       | "M" -> ()
       | "X" | "i" ->
         let tid = int_of_float (Perf_json.to_num (get "tid" e)) in
         let ts = Perf_json.to_num (get "ts" e) in
         (match Hashtbl.find_opt last_ts tid with
          | Some prev when ts <= prev ->
            Alcotest.failf "track %d not strictly ordered: %f after %f" tid
              ts prev
          | _ -> ());
         Hashtbl.replace last_ts tid ts;
         if ph = "X" then
           Alcotest.(check bool) "complete events carry a duration" true
             (Perf_json.to_num (get "dur" e) >= 0.)
       | other -> Alcotest.failf "unexpected phase %S" other)
    events;
  Alcotest.(check bool) "worker got its own track" true
    (Hashtbl.length last_ts >= 2)

(* ------------------------------------------------------------------ *)
(* Batch metrics are jobs-invariant                                    *)
(* ------------------------------------------------------------------ *)

let corpus_of_programs programs =
  List.mapi
    (fun i program -> { Batch.name = Printf.sprintf "p%d" i; program })
    programs

let arb_corpus =
  QCheck.make
    ~print:(fun progs ->
        String.concat "\n---\n" (List.map Dda_lang.Pretty.program_to_string progs))
    QCheck.Gen.(
      list_size (int_range 2 5) (QCheck.gen Test_support.Gen_ast.arb_affine_nest))

let prop_batch_metrics_jobs_invariant =
  (* Every counter and histogram the batch embeds in its JSON output
     must be a pure function of the per-item analysis work — running
     the same corpus on one worker or several yields the identical
     merged registry (the design rule that keeps batch output
     byte-identical across --jobs). *)
  QCheck.Test.make ~name:"batch metrics invariant under the job count"
    ~count:10 arb_corpus
    (fun programs ->
       let corpus = corpus_of_programs programs in
       let registry_of jobs =
         Metrics.reset ();
         ignore (Batch.run ~jobs corpus);
         Metrics.to_json_string (Metrics.snapshot ())
       in
       let solo = registry_of 1 in
       List.for_all (fun jobs -> registry_of jobs = solo) [ 2; 3 ])

(* ------------------------------------------------------------------ *)
(* Prometheus exposition                                               *)
(* ------------------------------------------------------------------ *)

let test_expo_sanitize () =
  Alcotest.(check string) "dots become underscores" "dda_serve_op_analyze_ns"
    (Expo.sanitize "serve.op.analyze.ns");
  Alcotest.(check string) "dashes too" "dda_a_b" (Expo.sanitize "a-b");
  Alcotest.(check string) "identity otherwise" "dda_memo_hits"
    (Expo.sanitize "memo_hits");
  (* Two registry names that collide after sanitization must refuse to
     render rather than silently merge into one series. *)
  Alcotest.check_raises "collision refused"
    (Invalid_argument
       "Expo: \"a.b\" and \"a-b\" both expose as \"dda_a_b\" — two series \
        would merge")
    (fun () ->
       ignore
         (Expo.to_string
            { Metrics.counters = [ ("a.b", 1); ("a-b", 2) ]; histograms = [] }))

let sample_snapshot =
  {
    Metrics.counters = [ ("qc.alpha", 3); ("qc.beta", 0) ];
    histograms =
      [
        ( "qc.lat",
          { Metrics.count = 6; sum = 100; buckets = [ (0, 1); (3, 2); (5, 3) ] }
        );
      ];
  }

let test_expo_well_formed () =
  let text = Expo.to_string ~extra_gauges:[ ("up", 1) ] sample_snapshot in
  let lines = String.split_on_char '\n' text in
  (* Every exposed family has HELP and TYPE lines. *)
  List.iter
    (fun name ->
       List.iter
         (fun directive ->
            Alcotest.(check bool)
              (directive ^ " for " ^ name) true
              (List.exists
                 (fun l ->
                    String.length l > 2
                    && String.starts_with ~prefix:("# " ^ directive ^ " " ^ name) l)
                 lines))
         [ "HELP"; "TYPE" ])
    [ "dda_qc_alpha"; "dda_qc_beta"; "dda_qc_lat"; "dda_up" ];
  (* The log2 histogram renders as monotone cumulative buckets with an
     +Inf bucket equal to the count. Bucket 3 covers [4,7] so its upper
     bound is 7; bucket 5 covers [16,31]. *)
  let expect =
    [
      "dda_qc_lat_bucket{le=\"0\"} 1";
      "dda_qc_lat_bucket{le=\"7\"} 3";
      "dda_qc_lat_bucket{le=\"31\"} 6";
      "dda_qc_lat_bucket{le=\"+Inf\"} 6";
      "dda_qc_lat_sum 100";
      "dda_qc_lat_count 6";
    ]
  in
  List.iter
    (fun l -> Alcotest.(check bool) ("line " ^ l) true (List.mem l lines))
    expect

let test_expo_parse_roundtrip_unit () =
  match Expo.parse (Expo.to_string ~extra_gauges:[ ("up", 42) ] sample_snapshot) with
  | Error msg -> Alcotest.failf "parse failed: %s" msg
  | Ok p ->
    Alcotest.(check (list (pair string int)))
      "counters"
      [ ("dda_qc_alpha", 3); ("dda_qc_beta", 0) ]
      p.Expo.p_counters;
    Alcotest.(check (list (pair string int))) "gauges" [ ("dda_up", 42) ]
      p.Expo.p_gauges;
    (match p.Expo.p_histograms with
     | [ ("dda_qc_lat", h) ] ->
       Alcotest.(check int) "count" 6 h.Expo.p_count;
       Alcotest.(check int) "sum" 100 h.Expo.p_sum;
       Alcotest.(check (list (pair string int)))
         "cumulative"
         [ ("0", 1); ("7", 3); ("31", 6); ("+Inf", 6) ]
         h.Expo.p_cumulative
     | hs -> Alcotest.failf "expected one histogram, got %d" (List.length hs))

let test_expo_parse_strict () =
  List.iter
    (fun text ->
       match Expo.parse text with
       | Error _ -> ()
       | Ok _ -> Alcotest.failf "parse accepted malformed input: %s" text)
    [
      "dda_x 1";  (* sample without a TYPE declaration *)
      "# TYPE dda_x counter\ndda_x one";  (* non-integer value *)
      "# TYPE dda_x counter\ndda_x 1 2 3";  (* too many fields *)
      "# FLAVOR dda_x counter";  (* unknown directive *)
      "# TYPE dda_x histogram\ndda_x_bucket{le=7} 1";  (* unquoted label *)
    ]

(* snapshot -> exposition -> parse loses nothing. The generator builds
   internally-consistent histograms (count = sum of bucket samples),
   which is what [Metrics.observe] always produces. *)
let arb_metrics_snapshot =
  let open QCheck in
  let gen =
    Gen.(
      let hist =
        let* idxs =
          map
            (fun l -> List.sort_uniq compare l)
            (list_size (int_range 1 6) (int_range 0 20))
        in
        let* samples =
          flatten_l (List.map (fun i -> pair (return i) (int_range 1 50)) idxs)
        in
        let* sum = int_range 0 1_000_000 in
        return
          {
            Metrics.count = List.fold_left (fun a (_, n) -> a + n) 0 samples;
            sum;
            buckets = samples;
          }
      in
      let* ncounters = int_range 0 4 in
      let* nhists = int_range 0 3 in
      let* counter_vals =
        flatten_l (List.init ncounters (fun _ -> int_range 0 1_000_000))
      in
      let* hists = flatten_l (List.init nhists (fun _ -> hist)) in
      return
        {
          Metrics.counters =
            List.mapi (fun i v -> (Printf.sprintf "qc.c%d" i, v)) counter_vals;
          histograms =
            List.mapi (fun i h -> (Printf.sprintf "qc.h%d" i, h)) hists;
        })
  in
  QCheck.make
    ~print:(fun s ->
        Expo.to_string s)
    gen

let prop_expo_roundtrip =
  QCheck.Test.make ~name:"expo round-trip: snapshot -> text -> parse"
    ~count:200 arb_metrics_snapshot (fun snap ->
      match Expo.parse (Expo.to_string snap) with
      | Error msg -> QCheck.Test.fail_report ("parse failed: " ^ msg)
      | Ok p ->
        List.iter
          (fun (name, v) ->
             if List.assoc_opt (Expo.sanitize name) p.Expo.p_counters <> Some v
             then QCheck.Test.fail_report ("counter lost: " ^ name))
          snap.Metrics.counters;
        List.iter
          (fun (name, (h : Metrics.hist_snapshot)) ->
             match List.assoc_opt (Expo.sanitize name) p.Expo.p_histograms with
             | None -> QCheck.Test.fail_report ("histogram lost: " ^ name)
             | Some ph ->
               if ph.Expo.p_count <> h.Metrics.count then
                 QCheck.Test.fail_report "count changed";
               if ph.Expo.p_sum <> h.Metrics.sum then
                 QCheck.Test.fail_report "sum changed";
               (* Cumulative counts are monotone and end at count. *)
               let rec mono prev = function
                 | [] -> ()
                 | (_, c) :: rest ->
                   if c < prev then QCheck.Test.fail_report "not monotone";
                   mono c rest
               in
               mono 0 ph.Expo.p_cumulative;
               (match List.rev ph.Expo.p_cumulative with
                | ("+Inf", c) :: _ when c = h.Metrics.count -> ()
                | _ -> QCheck.Test.fail_report "+Inf bucket wrong");
               if
                 List.length ph.Expo.p_cumulative
                 <> List.length h.Metrics.buckets + 1
               then QCheck.Test.fail_report "bucket count changed")
          snap.Metrics.histograms;
        true)

(* ------------------------------------------------------------------ *)
(* Stage attribution                                                   *)
(* ------------------------------------------------------------------ *)

(* A deterministic "clock" that jumps by a known amount per read makes
   the charged durations exact: each timed call reads twice, so it
   charges exactly [step]. *)
let with_attrib_clock step f =
  let t = ref 0 in
  Attrib.set_time_source (fun () -> t := !t + step; !t);
  Fun.protect ~finally:(fun () -> Attrib.set_time_source Clock.now) f

let stage_stat snap stage =
  List.assoc stage snap.Attrib.stages

let test_attrib_inactive () =
  Alcotest.(check bool) "no window" false (Attrib.collecting ());
  Alcotest.(check int) "time is transparent" 7
    (Attrib.time Attrib.Svpc (fun () -> 7));
  Attrib.add_steps 100 (* no-op, must not raise *)

let test_attrib_collect () =
  with_attrib_clock 3 (fun () ->
      let v, snap =
        Attrib.collect (fun () ->
            Alcotest.(check bool) "window open" true (Attrib.collecting ());
            let a = Attrib.time Attrib.Gcd (fun () -> 1) in
            let b = Attrib.time Attrib.Gcd (fun () -> 2) in
            let c = Attrib.time Attrib.Fourier (fun () -> 3) in
            Attrib.add_steps 5;
            Attrib.add_steps 7;
            a + b + c)
      in
      Alcotest.(check int) "result" 6 v;
      let gcd = stage_stat snap Attrib.Gcd in
      Alcotest.(check int) "gcd calls" 2 gcd.Attrib.calls;
      Alcotest.(check int) "gcd ns" 6 gcd.Attrib.ns;
      let fm = stage_stat snap Attrib.Fourier in
      Alcotest.(check int) "fourier calls" 1 fm.Attrib.calls;
      Alcotest.(check int) "fourier ns" 3 fm.Attrib.ns;
      let sv = stage_stat snap Attrib.Svpc in
      Alcotest.(check int) "untouched stage" 0 sv.Attrib.calls;
      Alcotest.(check int) "steps" 12 snap.Attrib.budget_steps;
      Alcotest.(check bool) "window closed" false (Attrib.collecting ()))

let test_attrib_charges_on_raise () =
  with_attrib_clock 1 (fun () ->
      let _, snap =
        Attrib.collect (fun () ->
            (try Attrib.time Attrib.Acyclic (fun () -> failwith "boom")
             with Failure _ -> ());
            ())
      in
      let ac = stage_stat snap Attrib.Acyclic in
      Alcotest.(check int) "call charged" 1 ac.Attrib.calls;
      Alcotest.(check int) "time charged" 1 ac.Attrib.ns)

let test_attrib_nested_and_raise () =
  with_attrib_clock 1 (fun () ->
      let (), outer =
        Attrib.collect (fun () ->
            ignore (Attrib.time Attrib.Svpc (fun () -> ()));
            let (), inner = Attrib.collect (fun () ->
                ignore (Attrib.time Attrib.Svpc (fun () -> ())))
            in
            (* The inner window reports nothing; the outer keeps
               collecting through it. *)
            Alcotest.(check int) "inner empty" 0
              (stage_stat inner Attrib.Svpc).Attrib.calls)
      in
      Alcotest.(check int) "outer saw both" 2
        (stage_stat outer Attrib.Svpc).Attrib.calls);
  (* A raise inside collect closes the window. *)
  (try ignore (Attrib.collect (fun () -> failwith "boom"))
   with Failure _ -> ());
  Alcotest.(check bool) "closed after raise" false (Attrib.collecting ())

let test_attrib_solver_integration () =
  (* The real cascade charges the window: analyze one flow-dependent
     loop and expect gcd (and svpc) activity plus budget steps. *)
  let program =
    "for i = 1 to 10 do\n  a[i] = a[i-1] + 1\nend\n"
  in
  let prog = Dda_lang.Parser.parse_program program in
  let _report, snap =
    Attrib.collect (fun () -> Dda_core.Analyzer.analyze prog)
  in
  let gcd = stage_stat snap Attrib.Gcd in
  Alcotest.(check bool) "gcd ran" true (gcd.Attrib.calls > 0);
  Alcotest.(check bool) "steps charged" true (snap.Attrib.budget_steps > 0)

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "obs"
    [
      ( "clock",
        [ Alcotest.test_case "strict monotonicity" `Quick test_clock_strict ] );
      ("log", [ Alcotest.test_case "levels" `Quick test_log_levels ]);
      ( "metrics",
        [
          Alcotest.test_case "counter basics" `Quick test_counter_basics;
          Alcotest.test_case "histogram buckets" `Quick test_histogram_buckets;
          Alcotest.test_case "merge and reset" `Quick test_merge_and_reset;
          Alcotest.test_case "striped updates across domains" `Quick
            test_striped_parallel;
        ] );
      ( "trace",
        [
          Alcotest.test_case "ring growth keeps every event" `Quick
            test_ring_growth;
          Alcotest.test_case "overflow counts losses" `Quick
            test_ring_overflow_counts_losses;
          Alcotest.test_case "wrap closes on raise" `Quick
            test_wrap_closes_on_raise;
          Alcotest.test_case "chrome export well-formed and ordered" `Quick
            test_chrome_export_well_formed;
        ] );
      ( "expo",
        [
          Alcotest.test_case "name sanitization" `Quick test_expo_sanitize;
          Alcotest.test_case "exposition well-formed" `Quick
            test_expo_well_formed;
          Alcotest.test_case "parse round-trip (unit)" `Quick
            test_expo_parse_roundtrip_unit;
          Alcotest.test_case "parser is strict" `Quick test_expo_parse_strict;
          qt prop_expo_roundtrip;
        ] );
      ( "attrib",
        [
          Alcotest.test_case "inactive path is transparent" `Quick
            test_attrib_inactive;
          Alcotest.test_case "collect charges calls, time, steps" `Quick
            test_attrib_collect;
          Alcotest.test_case "charges on raise" `Quick
            test_attrib_charges_on_raise;
          Alcotest.test_case "nested windows and raise" `Quick
            test_attrib_nested_and_raise;
          Alcotest.test_case "solver integration" `Quick
            test_attrib_solver_integration;
        ] );
      ( "batch",
        [ qt prop_batch_metrics_jobs_invariant ] );
    ]
