(* Tests for the individual dependence tests and the cascade, all
   cross-validated against brute-force enumeration — the master
   exactness property of the paper. *)

open Dda_numeric
open Dda_core
open Test_support

let z = Zint.of_int

let mk nvars rows = Consys.make ~nvars (List.map (fun (c, b) -> Consys.row_of_ints c b) rows)

(* ------------------------------------------------------------------ *)
(* Consys and Bounds basics                                            *)
(* ------------------------------------------------------------------ *)

let test_normalize_row () =
  (* 2x <= 5  ==>  x <= 2 (integer tightening) *)
  let r = Consys.row_of_ints [ 2 ] 5 in
  let n = Consys.normalize_row r in
  Alcotest.(check bool) "coeff 1" true (Zint.is_one n.coeffs.(0));
  Alcotest.(check bool) "rhs 2" true (Zint.equal n.rhs (z 2));
  (* -2x <= -5  ==>  -x <= -3, i.e. x >= 3 *)
  let r2 = Consys.normalize_row (Consys.row_of_ints [ -2 ] (-5)) in
  Alcotest.(check bool) "rhs -3" true (Zint.equal r2.rhs (z (-3)));
  (* Zero row untouched *)
  let r3 = Consys.normalize_row (Consys.row_of_ints [ 0; 0 ] 7) in
  Alcotest.(check bool) "zero row" true (Zint.equal r3.rhs (z 7))

let test_bounds_absorb () =
  let b = Bounds.create 2 in
  (* 3*t0 <= 10 -> t0 <= 3 *)
  (match Bounds.absorb b (Consys.row_of_ints [ 3; 0 ] 10) with
   | `Absorbed -> ()
   | _ -> Alcotest.fail "absorb");
  Alcotest.(check bool) "hi 3" true (Ext_int.equal (Bounds.hi b 0) (Ext_int.of_int 3));
  (* -2*t0 <= -5 -> t0 >= 3 (ceil 5/2) *)
  ignore (Bounds.absorb b (Consys.row_of_ints [ -2; 0 ] (-5)));
  Alcotest.(check bool) "lo 3" true (Ext_int.equal (Bounds.lo b 0) (Ext_int.of_int 3));
  Alcotest.(check bool) "consistent" true (Bounds.consistent b);
  ignore (Bounds.absorb b (Consys.row_of_ints [ 1; 0 ] 2));
  Alcotest.(check bool) "now empty" false (Bounds.consistent b);
  (match Bounds.absorb b (Consys.row_of_ints [ 0; 0 ] (-1)) with
   | `False -> ()
   | _ -> Alcotest.fail "constant false");
  match Bounds.absorb b (Consys.row_of_ints [ 0; 0 ] 1) with
  | `Trivial -> ()
  | _ -> Alcotest.fail "constant true"

(* ------------------------------------------------------------------ *)
(* SVPC: the paper's section 3.2 example                               *)
(* ------------------------------------------------------------------ *)

(* After GCD preprocessing of a[i1][i2] = a[i2+10][i1+9] in a 1..10
   double loop, the t-space constraints are: 1 <= t1 <= 10,
   1 <= t2 <= 10, 1 <= t2+9 <= 10, 1 <= t1-10 <= 10. The last one
   forces t1 >= 11: independent. *)
let test_svpc_paper_example () =
  let sys =
    mk 2
      [
        ([ 1; 0 ], 10); ([ -1; 0 ], -1);   (* 1 <= t1 <= 10 *)
        ([ 0; 1 ], 10); ([ 0; -1 ], -1);   (* 1 <= t2 <= 10 *)
        ([ 0; 1 ], 1); ([ 0; -1 ], 8);     (* 1 <= t2+9 <= 10 *)
        ([ 1; 0 ], 20); ([ -1; 0 ], -11);  (* 1 <= t1-10 <= 10 *)
      ]
  in
  (match Svpc.run sys with
   | Svpc.Infeasible _ -> ()
   | _ -> Alcotest.fail "expected infeasible");
  (* Loosening the offending constraint makes it feasible. *)
  let sys2 =
    mk 2 [ ([ 1; 0 ], 10); ([ -1; 0 ], -1); ([ 0; 1 ], 10); ([ 0; -1 ], -1) ]
  in
  match Svpc.run sys2 with
  | Svpc.Feasible box -> (
      match Bounds.sample box with
      | Some w -> Alcotest.(check bool) "witness valid" true (Consys.satisfies_all w sys2)
      | None -> Alcotest.fail "expected sample")
  | _ -> Alcotest.fail "expected feasible"

let test_svpc_partial () =
  let sys = mk 2 [ ([ 1; 0 ], 5); ([ 1; 1 ], 3) ] in
  match Svpc.run sys with
  | Svpc.Partial (_, [ dr ]) ->
    Alcotest.(check int) "multi row kept" 2 (Consys.num_vars_used dr.Cert.row)
  | _ -> Alcotest.fail "expected partial"

let test_svpc_unbounded_feasible () =
  (* Only lower bounds: feasible with infinite box. *)
  let sys = mk 2 [ ([ -1; 0 ], -1); ([ 0; -1 ], 5) ] in
  match Svpc.run sys with
  | Svpc.Feasible box -> (
      match Bounds.sample box with
      | Some w -> Alcotest.(check bool) "witness" true (Consys.satisfies_all w sys)
      | None -> Alcotest.fail "sample")
  | _ -> Alcotest.fail "expected feasible"

(* ------------------------------------------------------------------ *)
(* Acyclic                                                             *)
(* ------------------------------------------------------------------ *)

(* t1 + 2t2 - t3 <= 0 with boxes: acyclic in the paper's graph sense. *)
let test_acyclic_feasible () =
  let sys =
    mk 3
      [
        ([ 1; 0; 0 ], 4); ([ -1; 0; 0 ], 0);    (* 0 <= t1 <= 4 *)
        ([ 0; 1; 0 ], 4); ([ 0; -1; 0 ], -1);   (* 1 <= t2 <= 4 *)
        ([ 0; 0; 1 ], 4); ([ 0; 0; -1 ], 0);    (* 0 <= t3 <= 4 *)
        ([ 1; 2; -1 ], 0);
      ]
  in
  match Svpc.run sys with
  | Svpc.Partial (box, multi) -> (
      match Acyclic.run box multi with
      | Acyclic.Feasible (_, _) -> ()
      | _ -> Alcotest.fail "expected feasible")
  | _ -> Alcotest.fail "expected partial"

let test_acyclic_infeasible () =
  (* t1 + t2 <= 0 with both >= 1. *)
  let sys =
    mk 2 [ ([ -1; 0 ], -1); ([ 0; -1 ], -1); ([ 1; 1 ], 0) ]
  in
  match Svpc.run sys with
  | Svpc.Partial (box, multi) -> (
      match Acyclic.run box multi with
      | Acyclic.Infeasible _ -> ()
      | _ -> Alcotest.fail "expected infeasible")
  | _ -> Alcotest.fail "expected partial"

let test_acyclic_cycle_detected () =
  (* t1 - t2 <= -1 and t2 - t1 <= -1: a genuine cycle (and infeasible,
     but not the acyclic test's job to know). *)
  let sys = mk 2 [ ([ 1; -1 ], -1); ([ -1; 1 ], -1) ] in
  match Svpc.run sys with
  | Svpc.Partial (box, multi) -> (
      match Acyclic.run box multi with
      | Acyclic.Cycle (_, _, rows) -> Alcotest.(check int) "both rows remain" 2 (List.length rows)
      | _ -> Alcotest.fail "expected cycle")
  | _ -> Alcotest.fail "expected partial"

let test_acyclic_unbounded_discharge () =
  (* t1 + t2 <= 0, t2 >= 3, t1 unbounded below: feasible by pushing t1
     low. *)
  let sys = mk 2 [ ([ 0; -1 ], -3); ([ 1; 1 ], 0) ] in
  match Svpc.run sys with
  | Svpc.Partial (box, multi) -> (
      match Acyclic.run box multi with
      | Acyclic.Feasible (_, elims) ->
        let pins =
          List.filter
            (function Acyclic.Pinned _ -> true | Acyclic.Discharged _ -> false)
            elims
        in
        Alcotest.(check int) "no pin needed" 0 (List.length pins);
        Alcotest.(check bool) "t1 discharged" true
          (List.exists
             (function
               | Acyclic.Discharged { var = 0; _ } -> true
               | Acyclic.Discharged _ | Acyclic.Pinned _ -> false)
             elims)
      | _ -> Alcotest.fail "expected feasible")
  | _ -> Alcotest.fail "expected partial"

(* ------------------------------------------------------------------ *)
(* Loop Residue                                                        *)
(* ------------------------------------------------------------------ *)

let lr_input rows =
  match Svpc.run rows with
  | Svpc.Partial (box, multi) -> (box, multi)
  | Svpc.Feasible box -> (box, [])
  | Svpc.Infeasible _ -> Alcotest.fail "unexpected svpc infeasible"

let test_lr_negative_cycle () =
  (* Paper section 3.4 / figure 1 flavor: t1 <= t2 + 4, t2 <= t0(=0
     node) ... craft: t1 - t2 <= 4, t2 - t1 <= -5: cycle value -1. *)
  let sys = mk 2 [ ([ 1; -1 ], 4); ([ -1; 1 ], -5) ] in
  let box, multi = lr_input sys in
  (match Loop_residue.run box multi with
   | Some (Loop_residue.Infeasible _) -> ()
   | _ -> Alcotest.fail "expected negative cycle");
  (* Relax to cycle value 0: feasible. *)
  let sys2 = mk 2 [ ([ 1; -1 ], 4); ([ -1; 1 ], -4) ] in
  let box2, multi2 = lr_input sys2 in
  match Loop_residue.run box2 multi2 with
  | Some (Loop_residue.Feasible w) ->
    Alcotest.(check bool) "witness" true (Consys.satisfies_all w sys2)
  | _ -> Alcotest.fail "expected feasible"

let test_lr_equal_coefficient_extension () =
  (* 3t1 - 3t2 <= 7 tightens to t1 - t2 <= 2 (paper's extension). With
     t2 <= 0 and t1 >= 3 it is exactly satisfiable at distance 3 > 2:
     infeasible. *)
  let sys = mk 2 [ ([ 3; -3 ], 7); ([ 0; 1 ], 0); ([ -1; 0 ], -3) ] in
  let box, multi = lr_input sys in
  (match Loop_residue.run box multi with
   | Some (Loop_residue.Infeasible _) -> ()
   | _ -> Alcotest.fail "expected infeasible");
  (* 3t1 - 3t2 <= 9 allows distance 3. *)
  let sys2 = mk 2 [ ([ 3; -3 ], 9); ([ 0; 1 ], 0); ([ -1; 0 ], -3) ] in
  let box2, multi2 = lr_input sys2 in
  match Loop_residue.run box2 multi2 with
  | Some (Loop_residue.Feasible w) ->
    Alcotest.(check bool) "witness" true (Consys.satisfies_all w sys2)
  | _ -> Alcotest.fail "expected feasible"

let test_lr_applicability () =
  Alcotest.(check bool) "2-var equal-magnitude ok" true
    (Loop_residue.applicable [ Consys.row_of_ints [ 2; -2; 0 ] 5 ]);
  Alcotest.(check bool) "unequal magnitudes not ok" false
    (Loop_residue.applicable [ Consys.row_of_ints [ 2; -3; 0 ] 5 ]);
  Alcotest.(check bool) "same-sign pair not ok" false
    (Loop_residue.applicable [ Consys.row_of_ints [ 1; 1; 0 ] 5 ]);
  Alcotest.(check bool) "3 vars not ok" false
    (Loop_residue.applicable [ Consys.row_of_ints [ 1; -1; 1 ] 5 ]);
  Alcotest.(check bool) "single var ok" true
    (Loop_residue.applicable [ Consys.row_of_ints [ 0; 4; 0 ] 5 ])

let test_lr_dot () =
  let sys = mk 2 [ ([ 1; -1 ], 4); ([ -1; 1 ], -5); ([ 1; 0 ], 3) ] in
  let box, multi = lr_input sys in
  let dot = Loop_residue.to_dot box multi in
  Alcotest.(check bool) "digraph" true
    (String.length dot > 10 && String.sub dot 0 7 = "digraph");
  (* Contains an edge between variable nodes and one touching n0. *)
  let contains needle hay =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "var edge" true (contains "t1 -> t0" dot);
  Alcotest.(check bool) "n0 edge" true (contains "n0 -> t0" dot)

(* ------------------------------------------------------------------ *)
(* Fourier-Motzkin                                                     *)
(* ------------------------------------------------------------------ *)

let test_fm_feasible_with_witness () =
  let sys = mk 2 [ ([ 1; 1 ], 5); ([ -1; -1 ], -5); ([ 1; -1 ], 1); ([ -1; 1 ], 1) ] in
  (* t1 + t2 = 5, |t1 - t2| <= 1: (2,3) or (3,2). *)
  match Fourier.run sys with
  | Fourier.Feasible w ->
    Alcotest.(check bool) "witness" true (Consys.satisfies_all w sys)
  | _ -> Alcotest.fail "expected feasible"

let test_fm_rational_infeasible () =
  let sys = mk 1 [ ([ 2 ], 1); ([ -2 ], -3) ] in
  (* 2t <= 1 and 2t >= 3: rationally infeasible already. *)
  match Fourier.run sys with
  | Fourier.Infeasible _ -> ()
  | _ -> Alcotest.fail "expected infeasible"

let test_fm_integer_gap () =
  (* 1/2 <= t <= 2/3: rationally feasible, no integer. The single
     variable is last-eliminated, so the paper's special case proves
     independence with no branching. *)
  let sys = mk 1 [ ([ 2 ], -1) ] in
  ignore sys;
  let sys = mk 1 [ ([ -2 ], -1); ([ 3 ], 2) ] in
  let stats = Fourier.fresh_stats () in
  (match Fourier.run ~stats sys with
   | Fourier.Infeasible _ -> ()
   | _ -> Alcotest.fail "expected infeasible");
  Alcotest.(check int) "no branches needed" 0 stats.branches

let test_fm_branch_and_bound () =
  (* 2t1 - 2t2 = 1 cannot hold over the integers but is rationally
     fine; encoded as two inequalities over two variables so the gap
     only shows during back-substitution of the non-final variable. *)
  let sys = mk 2 [ ([ 2; -2 ], 1); ([ -2; 2 ], -1); ([ 1; 0 ], 10); ([ -1; 0 ], 10); ([ 0; 1 ], 10); ([ 0; -1 ], 10) ] in
  match Fourier.run sys with
  | Fourier.Infeasible _ -> ()
  | Fourier.Feasible w ->
    Alcotest.failf "claimed witness (%s, %s)" (Zint.to_string w.(0)) (Zint.to_string w.(1))
  | Fourier.Unknown | Fourier.Exhausted _ -> Alcotest.fail "unknown"

let test_fm_tighten_mode () =
  (* With tightening, 2t1 - 2t2 <= 1 becomes t1 - t2 <= 0; combined
     with t1 - t2 >= 1 it is infeasible without any integer sampling. *)
  let sys = mk 2 [ ([ 2; -2 ], 1); ([ -1; 1 ], -1) ] in
  (match Fourier.run ~tighten:true sys with
   | Fourier.Infeasible _ -> ()
   | _ -> Alcotest.fail "tighten should prove infeasible");
  match Fourier.run sys with
  | Fourier.Infeasible _ -> () (* plain mode gets there via sampling/B&B *)
  | _ -> Alcotest.fail "plain mode should also prove infeasible"

let test_fm_coefficient_growth () =
  (* A chain x_{k+1} in [3 x_k + 1, 3 x_k + 2] over 9 variables: each
     elimination multiplies coefficients by 3, pushing intermediate
     values well past anything a fixed-width integer could track had we
     used one. The witness must satisfy the original system. *)
  let n = 9 in
  let rows = ref [] in
  let row coeffs rhs = rows := { Consys.coeffs; rhs = z rhs } :: !rows in
  let unit i c = Array.init n (fun j -> if j = i then z c else Zint.zero) in
  row (unit 0 1) 1;
  row (unit 0 (-1)) 0;
  for k = 0 to n - 2 do
    (* x_{k+1} - 3 x_k <= 2  and  3 x_k - x_{k+1} <= -1 *)
    let up = Array.make n Zint.zero and lo = Array.make n Zint.zero in
    up.(k + 1) <- z 1;
    up.(k) <- z (-3);
    lo.(k) <- z 3;
    lo.(k + 1) <- z (-1);
    rows := { Consys.coeffs = up; rhs = z 2 } :: { Consys.coeffs = lo; rhs = z (-1) } :: !rows
  done;
  let sys = Consys.make ~nvars:n !rows in
  (match Fourier.run sys with
   | Fourier.Feasible w ->
     Alcotest.(check bool) "witness satisfies" true (Consys.satisfies_all w sys);
     (* The last variable is at least 3^8 / 2-ish when x_0 = 1. *)
     Alcotest.(check bool) "values grow" true
       (Zint.compare w.(n - 1) (z 100) > 0 || Zint.compare w.(0) (z 1) < 0)
   | _ -> Alcotest.fail "chain is satisfiable");
  (* Forcing x_0 >= 1 and x_{n-1} <= 100 makes it infeasible
     (3^8 > 100): the infeasibility proof also needs exact
     arithmetic. *)
  let cap = Array.make n Zint.zero in
  cap.(n - 1) <- z 1;
  let floor0 = Array.make n Zint.zero in
  floor0.(0) <- z (-1);
  let sys2 =
    Consys.make ~nvars:n
      ({ Consys.coeffs = cap; rhs = z 100 }
       :: { Consys.coeffs = floor0; rhs = z (-1) }
       :: !rows)
  in
  match Fourier.run sys2 with
  | Fourier.Infeasible _ -> ()
  | _ -> Alcotest.fail "capped chain should be infeasible"

let test_fm_unbounded () =
  let sys = mk 2 [ ([ 1; -1 ], -1) ] in
  match Fourier.run sys with
  | Fourier.Feasible w -> Alcotest.(check bool) "witness" true (Consys.satisfies_all w sys)
  | _ -> Alcotest.fail "expected feasible"

(* ------------------------------------------------------------------ *)
(* Properties: every test agrees with brute force                      *)
(* ------------------------------------------------------------------ *)

let prop_cascade_exact =
  QCheck.Test.make ~name:"cascade agrees with brute force" ~count:800
    Gen_sys.arb_boxed
    (fun boxed ->
       let truth = Gen_sys.brute_feasible boxed in
       match (Cascade.run boxed.sys).verdict with
       | Cascade.Independent _ -> not truth
       | Cascade.Dependent w -> truth && Consys.satisfies_all w boxed.sys
       | Cascade.Unknown | Cascade.Exhausted _ ->
         QCheck.Test.fail_reportf "unexpected inexact verdict")

let prop_fourier_exact =
  QCheck.Test.make ~name:"fourier alone agrees with brute force" ~count:500
    Gen_sys.arb_boxed
    (fun boxed ->
       let truth = Gen_sys.brute_feasible boxed in
       match Fourier.run boxed.sys with
       | Fourier.Infeasible _ -> not truth
       | Fourier.Feasible w -> truth && Consys.satisfies_all w boxed.sys
       | Fourier.Unknown | Fourier.Exhausted _ ->
         QCheck.Test.fail_reportf "unexpected inexact verdict")

let prop_fourier_tighten_exact =
  QCheck.Test.make ~name:"fourier with tightening agrees with brute force"
    ~count:500 Gen_sys.arb_boxed
    (fun boxed ->
       let truth = Gen_sys.brute_feasible boxed in
       match Fourier.run ~tighten:true boxed.sys with
       | Fourier.Infeasible _ -> not truth
       | Fourier.Feasible w -> truth && Consys.satisfies_all w boxed.sys
       | Fourier.Unknown | Fourier.Exhausted _ ->
         QCheck.Test.fail_reportf "unexpected inexact verdict")

let prop_loop_residue_exact =
  QCheck.Test.make ~name:"loop residue agrees with brute force on difference systems"
    ~count:500 Gen_sys.arb_boxed_diff
    (fun boxed ->
       let truth = Gen_sys.brute_feasible boxed in
       match Svpc.run boxed.sys with
       | Svpc.Infeasible _ -> not truth
       | Svpc.Feasible _ -> truth
       | Svpc.Partial (box, multi) -> (
           match Loop_residue.run box multi with
           | None -> QCheck.Test.fail_reportf "LR should apply to difference rows"
           | Some (Loop_residue.Infeasible _) -> not truth
           | Some (Loop_residue.Feasible w) ->
             truth && Consys.satisfies_all w boxed.sys))

(* The paper's section 2.1: integer programming in the form
   "exists x, A x = b, 0 <= x <= U" reduces to dependence testing. We
   encode random instances as one-reference problems (equalities plus
   box bounds), push them through the Extended GCD reduction and the
   cascade, and compare with brute force — exercising the
   equality-handling path end to end. *)
let arb_ip =
  QCheck.make
    ~print:(fun (p, _, _) -> Format.asprintf "%a" Dda_core.Problem.pp p)
    QCheck.Gen.(
      int_range 1 4 >>= fun n ->
      int_range 1 3 >>= fun m ->
      list_repeat n (int_range 2 6) >>= fun ubs ->
      list_repeat m (list_repeat n (int_range (-3) 3)) >>= fun rows ->
      list_repeat m (int_range (-6) 12) >>= fun rhss ->
      let names = Array.init n (Printf.sprintf "x%d") in
      let eqs =
        List.map2 (fun coeffs rhs -> Consys.row_of_ints coeffs rhs) rows rhss
      in
      let bound i c rhs =
        let coeffs = Array.make n Zint.zero in
        coeffs.(i) <- z c;
        { Problem.row = { Consys.coeffs; rhs = z rhs }; subject = i }
      in
      let ineqs =
        List.concat
          (List.mapi (fun i ub -> [ bound i 1 ub; bound i (-1) 0 ]) ubs)
      in
      let p =
        Problem.make ~names ~n1:n ~n2:0 ~nsym:0 ~ncommon:0 ~eqs ~ineqs
      in
      return (p, Array.of_list ubs, n))

let brute_ip (p : Problem.t) ubs n =
  let point = Array.make n Zint.zero in
  let rec go i =
    if i >= n then Problem.satisfies point p
    else begin
      let rec try_v v =
        v <= ubs.(i)
        && (point.(i) <- z v;
            go (i + 1) || try_v (v + 1))
      in
      try_v 0
    end
  in
  go 0

let prop_ip_reduction_exact =
  QCheck.Test.make
    ~name:"integer programming via the GCD reduction + cascade (paper s2.1)"
    ~count:500 arb_ip
    (fun (p, ubs, n) ->
       let truth = brute_ip p ubs n in
       match Gcd_test.run p with
       | Gcd_test.Independent _ -> not truth
       | Gcd_test.Reduced red -> (
           match (Cascade.run red.Gcd_test.system).verdict with
           | Cascade.Independent _ -> not truth
           | Cascade.Dependent t ->
             (* Map the parameter witness back and check it. *)
             truth && Problem.satisfies (Gcd_test.x_of_t red t) p
           | Cascade.Unknown | Cascade.Exhausted _ ->
             QCheck.Test.fail_reportf "unexpected inexact verdict"))

let prop_svpc_sound =
  QCheck.Test.make ~name:"svpc verdicts are sound" ~count:500 Gen_sys.arb_boxed
    (fun boxed ->
       let truth = Gen_sys.brute_feasible boxed in
       match Svpc.run boxed.sys with
       | Svpc.Infeasible _ -> not truth
       | Svpc.Feasible _ -> truth
       | Svpc.Partial _ -> true)

let prop_acyclic_sound =
  QCheck.Test.make ~name:"acyclic verdicts are sound" ~count:500 Gen_sys.arb_boxed
    (fun boxed ->
       let truth = Gen_sys.brute_feasible boxed in
       match Svpc.run boxed.sys with
       | Svpc.Infeasible _ -> not truth
       | Svpc.Feasible _ -> truth
       | Svpc.Partial (box, multi) -> (
           match Acyclic.run box multi with
           | Acyclic.Infeasible _ -> not truth
           | Acyclic.Feasible _ -> truth
           | Acyclic.Cycle _ -> true))

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "core-tests"
    [
      ( "plumbing",
        [
          Alcotest.test_case "normalize row" `Quick test_normalize_row;
          Alcotest.test_case "bounds absorb" `Quick test_bounds_absorb;
        ] );
      ( "svpc",
        [
          Alcotest.test_case "paper example" `Quick test_svpc_paper_example;
          Alcotest.test_case "partial" `Quick test_svpc_partial;
          Alcotest.test_case "unbounded feasible" `Quick test_svpc_unbounded_feasible;
        ] );
      ( "acyclic",
        [
          Alcotest.test_case "feasible" `Quick test_acyclic_feasible;
          Alcotest.test_case "infeasible" `Quick test_acyclic_infeasible;
          Alcotest.test_case "cycle detected" `Quick test_acyclic_cycle_detected;
          Alcotest.test_case "unbounded discharge" `Quick test_acyclic_unbounded_discharge;
        ] );
      ( "loop-residue",
        [
          Alcotest.test_case "negative cycle" `Quick test_lr_negative_cycle;
          Alcotest.test_case "equal coefficient extension" `Quick
            test_lr_equal_coefficient_extension;
          Alcotest.test_case "applicability" `Quick test_lr_applicability;
          Alcotest.test_case "dot output" `Quick test_lr_dot;
        ] );
      ( "fourier",
        [
          Alcotest.test_case "feasible with witness" `Quick test_fm_feasible_with_witness;
          Alcotest.test_case "rational infeasible" `Quick test_fm_rational_infeasible;
          Alcotest.test_case "integer gap" `Quick test_fm_integer_gap;
          Alcotest.test_case "branch and bound" `Quick test_fm_branch_and_bound;
          Alcotest.test_case "tighten mode" `Quick test_fm_tighten_mode;
          Alcotest.test_case "coefficient growth" `Quick test_fm_coefficient_growth;
          Alcotest.test_case "unbounded" `Quick test_fm_unbounded;
        ] );
      ( "exactness",
        [
          qt prop_cascade_exact;
          qt prop_fourier_exact;
          qt prop_fourier_tighten_exact;
          qt prop_loop_residue_exact;
          qt prop_ip_reduction_exact;
          qt prop_svpc_sound;
          qt prop_acyclic_sound;
        ] );
    ]
